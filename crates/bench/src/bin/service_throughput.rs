//! Batched-request throughput of the mapping service.
//!
//! Replays a workload of mapping requests — a mix of distinct
//! (model, platform, seed) combinations and exact repeats, the shape of
//! traffic a deployment-planning front-end generates — through the batch
//! scheduler and reports requests/second, cache effectiveness and
//! coalescing for the cold, warm and mixed phases, plus a sequential-vs-
//! concurrent comparison of the mixed batch on two identically warmed
//! services.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin service_throughput
//! MNC_BUDGET=ci cargo run --release -p mnc-bench --bin service_throughput
//! cargo run --release -p mnc-bench --bin service_throughput -- --quick
//! ```
//!
//! `--quick` is the CI smoke mode: a small workload under the `ci`
//! budget, and the batched responses are asserted bit-identical to
//! sequential `submit` (the process exits non-zero on any determinism
//! drift, panic, or coalescing-accounting mismatch).

use mnc_bench::Budget;
use mnc_runtime::{
    BatchConfig, BatchReport, LatencySummary, MappingRequest, MappingService, PipelineStats,
};
use serde::Serialize;
use std::time::Instant;

/// Machine-readable metrics of one batch phase (cold/warm/mixed).
#[derive(Debug, Clone, Serialize)]
struct PhaseMetrics {
    phase: String,
    requests: usize,
    unique_requests: usize,
    coalesced_requests: usize,
    elapsed_ms: f64,
    requests_per_s: f64,
    evaluations: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_ratio: f64,
}

/// The `--json` report: phase throughputs plus cache/coalescing totals,
/// written under `results/` so the service-throughput trajectory is
/// tracked across PRs.
#[derive(Debug, Serialize)]
struct ThroughputReport {
    bench: String,
    budget: String,
    quick: bool,
    base_requests: usize,
    phases: Vec<PhaseMetrics>,
    sequential_mixed_s: f64,
    batched_mixed_s: f64,
    batched_vs_sequential: f64,
    cache_entries: usize,
    lifetime_hit_ratio: f64,
    coalesced_inflight_lookups: u64,
    /// Service-lifetime per-stage pipeline counters (the staged request
    /// path every phase above was served through).
    pipeline: PipelineStats,
    /// Per-stage latency digests (p50/p99/p999) from the telemetry
    /// histograms behind the counters above.
    stage_latency: Vec<LatencySummary>,
    /// End-to-end request-latency digest across every phase.
    request_latency: LatencySummary,
}

/// Prints the per-stage and end-to-end percentile table the telemetry
/// histograms hold.
fn print_latency_table(stage_latency: &[LatencySummary], request_latency: &LatencySummary) {
    println!(
        "\n{:<17} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "latency", "count", "p50 us", "p99 us", "p99.9 us", "max us"
    );
    for summary in stage_latency.iter().chain(std::iter::once(request_latency)) {
        println!(
            "{:<17} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            summary.name,
            summary.count,
            summary.p50_micros,
            summary.p99_micros,
            summary.p999_micros,
            summary.max_micros,
        );
    }
}

fn workload(budget: Budget, quick: bool) -> Vec<MappingRequest> {
    let (samples, generations, population) = match budget {
        Budget::Ci => (500, 4, 12),
        Budget::Default => (1000, 8, 16),
        Budget::Paper => (2000, 20, 24),
    };
    let models: &[&str] = if quick {
        &["tiny_cnn_cifar10", "visformer_tiny_cifar100"]
    } else {
        &[
            "visformer_tiny_cifar100",
            "vgg11_cifar100",
            "tiny_cnn_cifar10",
        ]
    };
    let platforms: &[&str] = if quick {
        &["dual_test", "edge_biglittle"]
    } else {
        &["agx_xavier", "orin_agx", "edge_biglittle", "dual_test"]
    };
    let mut requests = Vec::new();
    for model in models {
        for platform in platforms {
            for seed in [1u64, 2] {
                requests.push(
                    MappingRequest::new(*model, *platform)
                        .validation_samples(samples)
                        .generations(generations)
                        .population_size(population)
                        .seed(seed),
                );
            }
        }
    }
    requests
}

/// The mixed phase: half exact repeats of the base workload, half new
/// seeds, plus in-batch duplicates so the coalescer has work to do.
fn mixed_workload(requests: &[MappingRequest]) -> Vec<MappingRequest> {
    let mut mixed: Vec<MappingRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i % 2 == 0 {
                r.clone()
            } else {
                r.clone().seed(900 + i as u64)
            }
        })
        .collect();
    let duplicates: Vec<MappingRequest> = mixed.iter().step_by(4).cloned().collect();
    mixed.extend(duplicates);
    mixed
}

fn run_phase(
    service: &MappingService,
    requests: &[MappingRequest],
    config: &BatchConfig,
    label: &str,
) -> (BatchReport, PhaseMetrics) {
    let report = service.submit_batch_with(requests, config);
    let mut evaluations = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    // Sum work over group leaders only: coalesced duplicates carry clones
    // of their leader's stats, so summing every response would double-
    // count each deduplicated search.
    for &position in &report.leader_positions {
        let response = report.responses[position]
            .as_ref()
            .expect("preset workload requests are valid");
        evaluations += response.stats.evaluations;
        hits += response.stats.cache_hits;
        misses += response.stats.cache_misses;
    }
    let elapsed = report.stats.elapsed_ms / 1e3;
    let lookups = hits + misses;
    let hit_ratio = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let hit_pct = hit_ratio * 100.0;
    println!(
        "{label:<6} {:>4} requests ({:>2} unique, {:>2} coalesced) in {elapsed:>7.2} s  ({:>6.2} req/s, {evaluations:>8} evaluations, {hit_pct:>5.1}% cache hits)",
        report.stats.requests,
        report.stats.unique_requests,
        report.stats.coalesced_requests,
        report.stats.requests as f64 / elapsed,
    );
    let metrics = PhaseMetrics {
        phase: label.to_string(),
        requests: report.stats.requests,
        unique_requests: report.stats.unique_requests,
        coalesced_requests: report.stats.coalesced_requests,
        elapsed_ms: report.stats.elapsed_ms,
        requests_per_s: report.stats.requests as f64 / elapsed.max(1e-9),
        evaluations,
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_ratio: hit_ratio,
    };
    (report, metrics)
}

/// Serves `mixed` sequentially and through the concurrent scheduler on two
/// *identically warmed* fresh services, reports the wall-clock ratio, and
/// returns both response sets for the determinism check.
fn sequential_vs_batched(
    base: &[MappingRequest],
    mixed: &[MappingRequest],
) -> (Vec<mnc_runtime::MappingResponse>, BatchReport, f64) {
    let sequential_service = MappingService::new();
    let batched_service = MappingService::new();
    // Warm both caches with the base workload so the comparison measures
    // scheduling, not who pays the cold evaluator builds.
    sequential_service.submit_batch(base);
    batched_service.submit_batch(base);

    let started = Instant::now();
    let sequential: Vec<_> = mixed
        .iter()
        .map(|request| {
            sequential_service
                .submit(request)
                .expect("preset workload requests are valid")
        })
        .collect();
    let sequential_s = started.elapsed().as_secs_f64();

    let report = batched_service.submit_batch_with(mixed, &BatchConfig::default());
    let batched_s = report.stats.elapsed_ms / 1e3;

    println!(
        "\nmixed batch, sequential submits: {sequential_s:.2} s; scheduled (max_concurrent={}, threads/request={}): {batched_s:.2} s  ({:.2}x)",
        report.stats.max_concurrent,
        report.stats.threads_per_request,
        sequential_s / batched_s.max(1e-9),
    );
    (sequential, report, sequential_s)
}

/// Asserts every batched response is bit-identical to its sequential
/// counterpart — the CI tripwire for determinism drift in the scheduler.
fn assert_bit_identical(sequential: &[mnc_runtime::MappingResponse], report: &BatchReport) {
    assert_eq!(sequential.len(), report.responses.len());
    for (index, (reference, batched)) in sequential.iter().zip(&report.responses).enumerate() {
        let batched = batched.as_ref().expect("batched request failed");
        assert_eq!(
            reference.pareto_front, batched.pareto_front,
            "determinism drift at request {index}"
        );
        assert_eq!(reference.best_by_objective, batched.best_by_objective);
        for (a, b) in reference.pareto_front.iter().zip(&batched.pareto_front) {
            assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
            assert_eq!(
                a.result.average_energy_mj.to_bits(),
                b.result.average_energy_mj.to_bits()
            );
            assert_eq!(
                a.result.average_latency_ms.to_bits(),
                b.result.average_latency_ms.to_bits()
            );
        }
    }
    println!("determinism: batched responses bit-identical to sequential submits");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let budget = if quick {
        Budget::Ci
    } else {
        Budget::from_env()
    };
    let requests = workload(budget, quick);
    let mixed = mixed_workload(&requests);
    let service = MappingService::new();

    println!(
        "service throughput, budget {budget:?}{}: {} base requests\n",
        if quick { " (quick)" } else { "" },
        requests.len()
    );
    let mut phases = Vec::new();
    // Cold: every evaluation is fresh.
    let (_, cold_metrics) = run_phase(&service, &requests, &BatchConfig::default(), "cold");
    phases.push(cold_metrics);
    // Warm: identical traffic, answered from the evaluation cache.
    let (_, warm_metrics) = run_phase(&service, &requests, &BatchConfig::default(), "warm");
    phases.push(warm_metrics);
    // Mixed: repeats + new seeds + in-batch duplicates.
    let (mixed_report, mixed_metrics) =
        run_phase(&service, &mixed, &BatchConfig::default(), "mixed");
    phases.push(mixed_metrics);
    assert!(
        mixed_report.stats.coalesced_requests > 0,
        "mixed workload must exercise the coalescer"
    );

    let (sequential, report, sequential_s) = sequential_vs_batched(&requests, &mixed);
    if quick {
        assert_bit_identical(&sequential, &report);
        // Recompute the expected grouping independently of the scheduler
        // (distinct requests modulo thread count, which never changes the
        // answer) so coalescing-accounting drift actually trips CI.
        let expected_unique = {
            let mut seen = std::collections::HashSet::new();
            for request in &mixed {
                let mut normalized = request.clone();
                normalized.threads = None;
                seen.insert(serde_json::to_string(&normalized).expect("requests serialize"));
            }
            seen.len()
        };
        assert_eq!(
            report.stats.unique_requests, expected_unique,
            "scheduler ran a different number of searches than the batch holds distinct requests"
        );
        assert_eq!(
            report.stats.coalesced_requests,
            mixed.len() - expected_unique
        );
        assert_eq!(report.leader_positions.len(), expected_unique);
    }

    let stats = service.cache_stats();
    println!(
        "\ncache: {} entries, {:.1}% lifetime hit ratio, {} coalesced in-flight lookups",
        stats.entries,
        stats.hit_ratio() * 100.0,
        stats.coalesced,
    );

    let pipeline = service.pipeline_stats();
    println!(
        "pipeline: {} requests over {} batches ({} coalesced), {} searches, {} evaluator builds / {} pool hits",
        pipeline.requests,
        pipeline.batches,
        pipeline.coalesced_requests,
        pipeline.searches_run,
        pipeline.evaluator_builds,
        pipeline.evaluator_pool_hits,
    );
    for stage in &pipeline.stages {
        println!(
            "  {:<17} {:>5} entered, {:>2} errors, {:>10.1} ms busy",
            stage.stage,
            stage.entered,
            stage.errors,
            stage.busy_micros as f64 / 1e3,
        );
    }

    let stage_latency = service.stage_latency();
    let request_latency = service.request_latency();
    print_latency_table(&stage_latency, &request_latency);
    assert_eq!(
        request_latency.count, pipeline.requests,
        "request-latency histogram counts every pipeline request"
    );

    if let Some(path) = json_path {
        let batched_s = report.stats.elapsed_ms / 1e3;
        let summary = ThroughputReport {
            bench: "service_throughput".to_string(),
            budget: format!("{budget:?}").to_lowercase(),
            quick,
            base_requests: requests.len(),
            phases,
            sequential_mixed_s: sequential_s,
            batched_mixed_s: batched_s,
            batched_vs_sequential: sequential_s / batched_s.max(1e-9),
            cache_entries: stats.entries,
            lifetime_hit_ratio: stats.hit_ratio(),
            coalesced_inflight_lookups: stats.coalesced,
            pipeline,
            stage_latency,
            request_latency,
        };
        mnc_bench::write_json_report(&path, &summary);
    }
}
