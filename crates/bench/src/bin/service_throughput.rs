//! Batched-request throughput of the mapping service.
//!
//! Replays a workload of mapping requests — a mix of distinct
//! (model, platform, seed) combinations and exact repeats, the shape of
//! traffic a deployment-planning front-end generates — through the batch
//! scheduler and reports requests/second, cache effectiveness and
//! coalescing for the cold, warm and mixed phases, plus a sequential-vs-
//! concurrent comparison of the mixed batch on two identically warmed
//! services.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin service_throughput
//! MNC_BUDGET=ci cargo run --release -p mnc-bench --bin service_throughput
//! cargo run --release -p mnc-bench --bin service_throughput -- --quick
//! ```
//!
//! `--quick` is the CI smoke mode: a small workload under the `ci`
//! budget, and the batched responses are asserted bit-identical to
//! sequential `submit` (the process exits non-zero on any determinism
//! drift, panic, or coalescing-accounting mismatch).

use mnc_bench::Budget;
use mnc_runtime::{BatchConfig, BatchReport, MappingRequest, MappingService};
use std::time::Instant;

fn workload(budget: Budget, quick: bool) -> Vec<MappingRequest> {
    let (samples, generations, population) = match budget {
        Budget::Ci => (500, 4, 12),
        Budget::Default => (1000, 8, 16),
        Budget::Paper => (2000, 20, 24),
    };
    let models: &[&str] = if quick {
        &["tiny_cnn_cifar10", "visformer_tiny_cifar100"]
    } else {
        &[
            "visformer_tiny_cifar100",
            "vgg11_cifar100",
            "tiny_cnn_cifar10",
        ]
    };
    let platforms: &[&str] = if quick {
        &["dual_test", "edge_biglittle"]
    } else {
        &["agx_xavier", "orin_agx", "edge_biglittle", "dual_test"]
    };
    let mut requests = Vec::new();
    for model in models {
        for platform in platforms {
            for seed in [1u64, 2] {
                requests.push(
                    MappingRequest::new(*model, *platform)
                        .validation_samples(samples)
                        .generations(generations)
                        .population_size(population)
                        .seed(seed),
                );
            }
        }
    }
    requests
}

/// The mixed phase: half exact repeats of the base workload, half new
/// seeds, plus in-batch duplicates so the coalescer has work to do.
fn mixed_workload(requests: &[MappingRequest]) -> Vec<MappingRequest> {
    let mut mixed: Vec<MappingRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i % 2 == 0 {
                r.clone()
            } else {
                r.clone().seed(900 + i as u64)
            }
        })
        .collect();
    let duplicates: Vec<MappingRequest> = mixed.iter().step_by(4).cloned().collect();
    mixed.extend(duplicates);
    mixed
}

fn run_phase(
    service: &MappingService,
    requests: &[MappingRequest],
    config: &BatchConfig,
    label: &str,
) -> BatchReport {
    let report = service.submit_batch_with(requests, config);
    let mut evaluations = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    // Sum work over group leaders only: coalesced duplicates carry clones
    // of their leader's stats, so summing every response would double-
    // count each deduplicated search.
    for &position in &report.leader_positions {
        let response = report.responses[position]
            .as_ref()
            .expect("preset workload requests are valid");
        evaluations += response.stats.evaluations;
        hits += response.stats.cache_hits;
        misses += response.stats.cache_misses;
    }
    let elapsed = report.stats.elapsed_ms / 1e3;
    let lookups = hits + misses;
    let hit_pct = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64 * 100.0
    };
    println!(
        "{label:<6} {:>4} requests ({:>2} unique, {:>2} coalesced) in {elapsed:>7.2} s  ({:>6.2} req/s, {evaluations:>8} evaluations, {hit_pct:>5.1}% cache hits)",
        report.stats.requests,
        report.stats.unique_requests,
        report.stats.coalesced_requests,
        report.stats.requests as f64 / elapsed,
    );
    report
}

/// Serves `mixed` sequentially and through the concurrent scheduler on two
/// *identically warmed* fresh services, reports the wall-clock ratio, and
/// returns both response sets for the determinism check.
fn sequential_vs_batched(
    base: &[MappingRequest],
    mixed: &[MappingRequest],
) -> (Vec<mnc_runtime::MappingResponse>, BatchReport) {
    let sequential_service = MappingService::new();
    let batched_service = MappingService::new();
    // Warm both caches with the base workload so the comparison measures
    // scheduling, not who pays the cold evaluator builds.
    sequential_service.submit_batch(base);
    batched_service.submit_batch(base);

    let started = Instant::now();
    let sequential: Vec<_> = mixed
        .iter()
        .map(|request| {
            sequential_service
                .submit(request)
                .expect("preset workload requests are valid")
        })
        .collect();
    let sequential_s = started.elapsed().as_secs_f64();

    let report = batched_service.submit_batch_with(mixed, &BatchConfig::default());
    let batched_s = report.stats.elapsed_ms / 1e3;

    println!(
        "\nmixed batch, sequential submits: {sequential_s:.2} s; scheduled (max_concurrent={}, threads/request={}): {batched_s:.2} s  ({:.2}x)",
        report.stats.max_concurrent,
        report.stats.threads_per_request,
        sequential_s / batched_s.max(1e-9),
    );
    (sequential, report)
}

/// Asserts every batched response is bit-identical to its sequential
/// counterpart — the CI tripwire for determinism drift in the scheduler.
fn assert_bit_identical(sequential: &[mnc_runtime::MappingResponse], report: &BatchReport) {
    assert_eq!(sequential.len(), report.responses.len());
    for (index, (reference, batched)) in sequential.iter().zip(&report.responses).enumerate() {
        let batched = batched.as_ref().expect("batched request failed");
        assert_eq!(
            reference.pareto_front, batched.pareto_front,
            "determinism drift at request {index}"
        );
        assert_eq!(reference.best_by_objective, batched.best_by_objective);
        for (a, b) in reference.pareto_front.iter().zip(&batched.pareto_front) {
            assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
            assert_eq!(
                a.result.average_energy_mj.to_bits(),
                b.result.average_energy_mj.to_bits()
            );
            assert_eq!(
                a.result.average_latency_ms.to_bits(),
                b.result.average_latency_ms.to_bits()
            );
        }
    }
    println!("determinism: batched responses bit-identical to sequential submits");
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let budget = if quick {
        Budget::Ci
    } else {
        Budget::from_env()
    };
    let requests = workload(budget, quick);
    let mixed = mixed_workload(&requests);
    let service = MappingService::new();

    println!(
        "service throughput, budget {budget:?}{}: {} base requests\n",
        if quick { " (quick)" } else { "" },
        requests.len()
    );
    // Cold: every evaluation is fresh.
    run_phase(&service, &requests, &BatchConfig::default(), "cold");
    // Warm: identical traffic, answered from the evaluation cache.
    run_phase(&service, &requests, &BatchConfig::default(), "warm");
    // Mixed: repeats + new seeds + in-batch duplicates.
    let mixed_report = run_phase(&service, &mixed, &BatchConfig::default(), "mixed");
    assert!(
        mixed_report.stats.coalesced_requests > 0,
        "mixed workload must exercise the coalescer"
    );

    let (sequential, report) = sequential_vs_batched(&requests, &mixed);
    if quick {
        assert_bit_identical(&sequential, &report);
        // Recompute the expected grouping independently of the scheduler
        // (distinct requests modulo thread count, which never changes the
        // answer) so coalescing-accounting drift actually trips CI.
        let expected_unique = {
            let mut seen = std::collections::HashSet::new();
            for request in &mixed {
                let mut normalized = request.clone();
                normalized.threads = None;
                seen.insert(serde_json::to_string(&normalized).expect("requests serialize"));
            }
            seen.len()
        };
        assert_eq!(
            report.stats.unique_requests, expected_unique,
            "scheduler ran a different number of searches than the batch holds distinct requests"
        );
        assert_eq!(
            report.stats.coalesced_requests,
            mixed.len() - expected_unique
        );
        assert_eq!(report.leader_positions.len(), expected_unique);
    }

    let stats = service.cache_stats();
    println!(
        "\ncache: {} entries, {:.1}% lifetime hit ratio, {} coalesced in-flight lookups",
        stats.entries,
        stats.hit_ratio() * 100.0,
        stats.coalesced,
    );
}
