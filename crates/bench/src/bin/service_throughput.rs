//! Batched-request throughput of the mapping service.
//!
//! Replays a workload of mapping requests — a mix of distinct
//! (model, platform, seed) combinations and exact repeats, the shape of
//! traffic a deployment-planning front-end generates — and reports
//! requests/second plus cache effectiveness for the cold and warm phases.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin service_throughput
//! MNC_BUDGET=ci cargo run --release -p mnc-bench --bin service_throughput
//! ```

use mnc_bench::Budget;
use mnc_runtime::{MappingRequest, MappingService};
use std::time::Instant;

fn workload(budget: Budget) -> Vec<MappingRequest> {
    let (samples, generations, population) = match budget {
        Budget::Ci => (500, 4, 12),
        Budget::Default => (1000, 8, 16),
        Budget::Paper => (2000, 20, 24),
    };
    let mut requests = Vec::new();
    for model in [
        "visformer_tiny_cifar100",
        "vgg11_cifar100",
        "tiny_cnn_cifar10",
    ] {
        for platform in ["agx_xavier", "orin_agx", "edge_biglittle", "dual_test"] {
            for seed in [1u64, 2] {
                requests.push(
                    MappingRequest::new(model, platform)
                        .validation_samples(samples)
                        .generations(generations)
                        .population_size(population)
                        .seed(seed),
                );
            }
        }
    }
    requests
}

fn run_phase(service: &MappingService, requests: &[MappingRequest], label: &str) {
    let started = Instant::now();
    let mut evaluations = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for result in service.submit_batch(requests) {
        let response = result.expect("preset workload requests are valid");
        evaluations += response.stats.evaluations;
        hits += response.stats.cache_hits;
        misses += response.stats.cache_misses;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let lookups = hits + misses;
    let hit_pct = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64 * 100.0
    };
    println!(
        "{label:<6} {:>4} requests in {elapsed:>7.2} s  ({:>6.2} req/s, {:>8} evaluations, {hit_pct:>5.1}% cache hits)",
        requests.len(),
        requests.len() as f64 / elapsed,
        evaluations,
    );
}

fn main() {
    let budget = Budget::from_env();
    let requests = workload(budget);
    let service = MappingService::new();

    println!(
        "service throughput, budget {budget:?}: {} distinct requests\n",
        requests.len()
    );
    // Cold: every evaluation is fresh.
    run_phase(&service, &requests, "cold");
    // Warm: identical traffic, answered from the evaluation cache.
    run_phase(&service, &requests, "warm");
    // Mixed: half repeats, half new seeds (partial cache reuse through
    // shared elites is workload-dependent but the repeats are free).
    let mixed: Vec<MappingRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i % 2 == 0 {
                r.clone()
            } else {
                r.clone().seed(900 + i as u64)
            }
        })
        .collect();
    run_phase(&service, &mixed, "mixed");

    let stats = service.cache_stats();
    println!(
        "\ncache: {} entries, {:.1}% lifetime hit ratio",
        stats.entries,
        stats.hit_ratio() * 100.0
    );
}
