//! Reproduces Fig. 6: the energy/latency scatter of all configurations
//! explored by the three search strategies (no feature-map-reuse
//! constraint, ≤75% and ≤50%), with the headline factors — up to ~2.1x
//! energy gain over GPU-only at ≤30 ms latency and up to ~1.7x latency
//! speedup over DLA-only.
//!
//! ```text
//! MNC_BUDGET=ci cargo run -p mnc-bench --bin fig6_search
//! ```

use mnc_bench::{
    format_factor, print_table, run_search, single_cu_baselines, write_json, Budget, Workload,
};
use serde::Serialize;

#[derive(Serialize)]
struct ScatterPoint {
    strategy: String,
    average_energy_mj: f64,
    average_latency_ms: f64,
    accuracy_drop: f64,
    fmap_reuse: f64,
    feasible: bool,
}

#[derive(Serialize)]
struct StrategySummary {
    strategy: String,
    evaluations: usize,
    feasible: usize,
    pareto_size: usize,
    accuracy_drop_tolerance: f64,
    best_energy_gain_vs_gpu: f64,
    best_speedup_vs_dla: f64,
    best_energy_gain_within_30ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut all_points: Vec<ScatterPoint> = Vec::new();
    let mut summaries: Vec<StrategySummary> = Vec::new();

    for (strategy, limit, seed) in [
        ("no-constraint", None, 201u64),
        ("reuse<=75%", Some(0.75), 202),
        ("reuse<=50%", Some(0.50), 203),
    ] {
        let (evaluator, outcome) = run_search(Workload::Visformer, limit, budget, seed)?;
        let (gpu, dla) = single_cu_baselines(&evaluator)?;

        for candidate in outcome.archive() {
            all_points.push(ScatterPoint {
                strategy: strategy.to_string(),
                average_energy_mj: candidate.result.average_energy_mj,
                average_latency_ms: candidate.result.average_latency_ms,
                accuracy_drop: candidate.result.accuracy_drop,
                fmap_reuse: candidate.result.fmap_reuse,
                feasible: candidate.result.feasible,
            });
        }

        // The paper highlights configurations within 0.5% of the baseline
        // accuracy; under tight reuse constraints our accuracy model loses
        // more than that, so walk the same tolerance ladder the Table II
        // picks use and report which tolerance was needed.
        let (accuracy_tolerance, highlighted): (f64, Vec<_>) = mnc_bench::ACCURACY_DROP_LADDER
            .iter()
            .map(|tol| {
                (
                    *tol,
                    outcome
                        .feasible()
                        .into_iter()
                        .filter(|c| c.result.accuracy_drop <= *tol)
                        .collect::<Vec<_>>(),
                )
            })
            .find(|(_, configs)| !configs.is_empty())
            .unwrap_or((f64::NAN, Vec::new()));
        let best_energy_gain = highlighted
            .iter()
            .map(|c| gpu.energy_mj / c.result.average_energy_mj)
            .fold(0.0, f64::max);
        let best_speedup = highlighted
            .iter()
            .map(|c| dla.latency_ms / c.result.average_latency_ms)
            .fold(0.0, f64::max);
        let best_energy_gain_30ms = highlighted
            .iter()
            .filter(|c| c.result.average_latency_ms <= 30.0)
            .map(|c| gpu.energy_mj / c.result.average_energy_mj)
            .fold(0.0, f64::max);

        summaries.push(StrategySummary {
            strategy: strategy.to_string(),
            evaluations: outcome.evaluations(),
            feasible: outcome.feasible().len(),
            pareto_size: outcome.pareto_front().len(),
            accuracy_drop_tolerance: accuracy_tolerance,
            best_energy_gain_vs_gpu: best_energy_gain,
            best_speedup_vs_dla: best_speedup,
            best_energy_gain_within_30ms: best_energy_gain_30ms,
        });
    }

    print_table(
        "Fig. 6 — search strategies on Visformer / AGX Xavier",
        &[
            "strategy",
            "evaluations",
            "feasible",
            "pareto size",
            "acc-drop tol.",
            "energy gain vs GPU",
            "energy gain vs GPU (≤30 ms)",
            "speedup vs DLA",
        ],
        &summaries
            .iter()
            .map(|s| {
                vec![
                    s.strategy.clone(),
                    s.evaluations.to_string(),
                    s.feasible.to_string(),
                    s.pareto_size.to_string(),
                    format!("{:.1}%", s.accuracy_drop_tolerance * 100.0),
                    format_factor(s.best_energy_gain_vs_gpu),
                    format_factor(s.best_energy_gain_within_30ms),
                    format_factor(s.best_speedup_vs_dla),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nPaper reference (Fig. 6): ~2.1x energy gain over GPU-only at ≤30 ms (no constraint), ~1.7x latency");
    println!("speedup over DLA-only; the gains shrink to ~1.6x/1.5x and ~1.6x/1.4x under the 75% and 50% reuse");
    println!(
        "constraints, and the 50% case costs ~6% accuracy on the most constrained configurations."
    );

    write_json("fig6_scatter", &all_points);
    write_json("fig6_summary", &summaries);
    Ok(())
}
