//! Reproduces Fig. 1: the motivational comparison of mapping/deployment
//! options for Visformer on CIFAR-100 and the AGX Xavier MPSoC.
//!
//! The paper compares four deployments — GPU-only, DLA-only, a static
//! width-partitioned distributed mapping, and the dynamic Map-Conquer
//! mapping — on energy and latency, and shows that the dynamic version
//! needs ~40% less feature-map traffic than the static one.
//!
//! ```text
//! MNC_BUDGET=ci cargo run -p mnc-bench --bin fig1_motivation
//! ```

use mnc_bench::{
    build_evaluator, format_factor, format_percent, print_table, write_json, Budget, Workload,
};
use mnc_core::MappingConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Row {
    deployment: String,
    latency_ms: f64,
    energy_mj: f64,
    accuracy: f64,
    fmap_transfer_mb: Option<f64>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let evaluator = build_evaluator(Workload::Visformer, None, budget)?;
    let network = evaluator.network().clone();
    let platform = evaluator.platform().clone();

    // Single-compute-unit baselines (left bars of Fig. 1).
    let gpu = evaluator.baseline_single_cu(mnc_mpsoc::CuId(0))?;
    let dla = evaluator.baseline_single_cu(mnc_mpsoc::CuId(1))?;

    // Width-partitioned mapping across GPU + 2 DLAs, first deployed
    // statically (all stages always execute) and then dynamically
    // (Map-Conquer early exits).
    let config = MappingConfig::uniform(&network, &platform)?;
    let static_mapping = evaluator.baseline_static_distributed(&config)?;
    let dynamic = evaluator.evaluate(&config)?;

    let dynamic_transfer_mb = {
        let dynamic_net =
            mnc_dynamic::DynamicNetwork::transform(&network, &config.partition, &config.indicator)?;
        // Weight transfers by how often each stage is actually instantiated
        // under early exits — the saving the right plot of Fig. 1 reports.
        let total: usize = dynamic.exit_counts.iter().sum();
        let mut expected_bytes = 0.0;
        for (stage_index, stage) in dynamic_net.stages().iter().enumerate() {
            let instantiated: usize = dynamic.exit_counts.iter().skip(stage_index).sum();
            expected_bytes +=
                stage.total_incoming_bytes() * instantiated as f64 / total.max(1) as f64;
        }
        expected_bytes / 1e6
    };
    let static_transfer_mb = {
        let dynamic_net =
            mnc_dynamic::DynamicNetwork::transform(&network, &config.partition, &config.indicator)?;
        dynamic_net.total_transfer_bytes() / 1e6
    };

    let rows = vec![
        Fig1Row {
            deployment: "GPU-only".to_string(),
            latency_ms: gpu.latency_ms,
            energy_mj: gpu.energy_mj,
            accuracy: gpu.accuracy,
            fmap_transfer_mb: None,
        },
        Fig1Row {
            deployment: "DLA-only".to_string(),
            latency_ms: dla.latency_ms,
            energy_mj: dla.energy_mj,
            accuracy: dla.accuracy,
            fmap_transfer_mb: None,
        },
        Fig1Row {
            deployment: "Static mapping (width split, GPU+2DLA)".to_string(),
            latency_ms: static_mapping.latency_ms,
            energy_mj: static_mapping.energy_mj,
            accuracy: static_mapping.accuracy,
            fmap_transfer_mb: Some(static_transfer_mb),
        },
        Fig1Row {
            deployment: "Map-Conquer (dynamic multi-exit)".to_string(),
            latency_ms: dynamic.average_latency_ms,
            energy_mj: dynamic.average_energy_mj,
            accuracy: dynamic.accuracy,
            fmap_transfer_mb: Some(dynamic_transfer_mb),
        },
    ];

    print_table(
        "Fig. 1 — Visformer on AGX Xavier: mapping and deployment options",
        &[
            "deployment",
            "latency [ms]",
            "energy [mJ]",
            "top-1",
            "fmap traffic [MB]",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.deployment.clone(),
                    format!("{:.2}", r.latency_ms),
                    format!("{:.2}", r.energy_mj),
                    format_percent(r.accuracy),
                    r.fmap_transfer_mb
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nPaper reference points (Fig. 1): GPU-only 197 mJ / 15 ms, DLA-only 54 mJ-class energy with ~54 ms latency;");
    println!("static mapping improves each single-CU deployment's weak metric; the dynamic mapping dominates the DLA on");
    println!("both axes and needs ~40% less feature-map traffic than the static mapping.");

    println!(
        "\nSpeedup of static mapping over DLA-only:   {}",
        format_factor(dla.latency_ms / static_mapping.latency_ms)
    );
    println!(
        "Energy gain of static mapping over GPU-only: {}",
        format_percent(1.0 - static_mapping.energy_mj / gpu.energy_mj)
    );
    println!(
        "Speedup of dynamic mapping over DLA-only:  {}",
        format_factor(dla.latency_ms / dynamic.average_latency_ms)
    );
    println!(
        "Energy gain of dynamic mapping over DLA-only: {}",
        format_percent(1.0 - dynamic.average_energy_mj / dla.energy_mj)
    );
    println!(
        "Feature-map traffic of dynamic vs static mapping: {} less",
        format_percent(1.0 - dynamic_transfer_mb / static_transfer_mb.max(1e-9))
    );

    write_json("fig1_motivation", &rows);
    Ok(())
}
