//! Reproduces Table II: performance breakdown of the Pareto-optimal models
//! found by Map-and-Conquer under the three feature-map-reuse strategies,
//! for Visformer and VGG-19, against the GPU-only / DLA-only baselines.
//!
//! ```text
//! MNC_BUDGET=ci cargo run -p mnc-bench --bin table2_pareto       # quick shape check
//! MNC_BUDGET=paper cargo run -p mnc-bench --bin table2_pareto    # full 12k-evaluation budget
//! ```

use mnc_bench::{
    format_percent, pick_energy_oriented, pick_latency_oriented, print_table, run_search,
    single_cu_baselines, write_json, Budget, Workload,
};
use mnc_optim::EvaluatedConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    workload: String,
    strategy: String,
    implementation: String,
    top1_accuracy: f64,
    average_energy_mj: f64,
    average_latency_ms: f64,
    fmap_reuse: Option<f64>,
}

fn candidate_row(
    workload: Workload,
    strategy: &str,
    implementation: &str,
    candidate: &EvaluatedConfig,
) -> Table2Row {
    Table2Row {
        workload: workload.name().to_string(),
        strategy: strategy.to_string(),
        implementation: implementation.to_string(),
        top1_accuracy: candidate.result.accuracy,
        average_energy_mj: candidate.result.average_energy_mj,
        average_latency_ms: candidate.result.average_latency_ms,
        fmap_reuse: Some(candidate.result.fmap_reuse),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut rows: Vec<Table2Row> = Vec::new();

    for workload in [Workload::Visformer, Workload::Vgg19] {
        // Baseline rows (strategy "None" in the paper's table).
        let evaluator = mnc_bench::build_evaluator(workload, None, budget)?;
        let (gpu, dla) = single_cu_baselines(&evaluator)?;
        rows.push(Table2Row {
            workload: workload.name().to_string(),
            strategy: "None".to_string(),
            implementation: "GPU".to_string(),
            top1_accuracy: gpu.accuracy,
            average_energy_mj: gpu.energy_mj,
            average_latency_ms: gpu.latency_ms,
            fmap_reuse: None,
        });
        rows.push(Table2Row {
            workload: workload.name().to_string(),
            strategy: "None".to_string(),
            implementation: "DLA".to_string(),
            top1_accuracy: dla.accuracy,
            average_energy_mj: dla.energy_mj,
            average_latency_ms: dla.latency_ms,
            fmap_reuse: None,
        });

        for (strategy, limit, seed) in [
            ("No Fmap constr.", None, 101u64),
            ("75% Fmap constr.", Some(0.75), 102),
            ("50% Fmap constr.", Some(0.50), 103),
        ] {
            let (_evaluator, outcome) = run_search(workload, limit, budget, seed)?;
            if let Some(ours_l) = pick_latency_oriented(&outcome) {
                rows.push(candidate_row(workload, strategy, "Ours-L", ours_l));
            }
            if let Some(ours_e) = pick_energy_oriented(&outcome) {
                rows.push(candidate_row(workload, strategy, "Ours-E", ours_e));
            }
            eprintln!(
                "[table2] {} / {strategy}: {} evaluations, {} feasible, pareto size {}",
                workload.name(),
                outcome.evaluations(),
                outcome.feasible().len(),
                outcome.pareto_front().len()
            );
        }
    }

    print_table(
        "Table II — Pareto-optimal models vs single-CU baselines",
        &[
            "network",
            "strategy",
            "impl.",
            "top-1",
            "avg energy [mJ]",
            "avg latency [ms]",
            "fmap reuse",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.strategy.clone(),
                    r.implementation.clone(),
                    format_percent(r.top1_accuracy),
                    format!("{:.2}", r.average_energy_mj),
                    format!("{:.2}", r.average_latency_ms),
                    r.fmap_reuse
                        .map(format_percent)
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nPaper reference (Table II, Visformer): GPU 88.09% / 197.35 mJ / 15.01 ms; DLA 69.22 mJ / 53.71 ms;");
    println!("Ours-E (no constraint) 87.58% / 59.21 mJ / 30.40 ms; accuracy degrades to ~82-84% under the 50% reuse constraint.");
    println!("Paper reference (Table II, VGG-19): GPU 80.55% / 630.11 mJ / 25.23 ms; DLA 164.89 mJ / 114.41 ms;");
    println!("Ours-E (no constraint) 84.63% / 153.97 mJ / 34.02 ms.");

    write_json("table2_pareto", &rows);
    Ok(())
}
