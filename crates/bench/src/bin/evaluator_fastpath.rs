//! Cold genome-evaluation fast path vs the pre-fast-path pipeline.
//!
//! Measures the acceptance workload of the fast-path PR — cold
//! single-genome evaluation of visformer on `agx_xavier` with the full
//! 10 000-sample validation set — through three pipelines:
//!
//! * **reference** — `Evaluator::evaluate_reference`: fresh transform,
//!   per-slice estimator dispatch, naive per-sample accuracy loop (the
//!   pre-PR baseline, retained as the property-test oracle),
//! * **fast** — `Evaluator::evaluate`: fresh transform, precomputed cost
//!   tables, closed-form accuracy over the sorted-difficulty index,
//! * **fast + memoised transform** — `Evaluator::evaluate_transformed`
//!   with the dynamic network already derived, the path the runtime's
//!   transform cache serves for genomes sharing structure genes.
//!
//! Every measured evaluation is asserted bit-identical across pipelines
//! first, then the per-evaluation wall times and the speedup land in a
//! JSON report under `results/` (override with `--json <path>`) so the
//! perf trajectory is tracked from this PR onward. `--smoke` shrinks the
//! iteration counts for CI and asserts the ≥10× acceptance threshold.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin evaluator_fastpath
//! cargo run --release -p mnc-bench --bin evaluator_fastpath -- --smoke --json results/evaluator_fastpath_ci.json
//! ```

use mnc_core::{Evaluator, EvaluatorBuilder, MappingConfig};
use mnc_dynamic::DynamicNetwork;
use mnc_mpsoc::Platform;
use mnc_nn::models::{visformer, ModelPreset};
use mnc_optim::Genome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

const MODEL: &str = "visformer_cifar100";
const PLATFORM: &str = "agx_xavier";
const VALIDATION_SAMPLES: usize = 10_000;

#[derive(Debug, Serialize)]
struct FastPathReport {
    bench: String,
    model: String,
    platform: String,
    validation_samples: usize,
    genomes: usize,
    reference_iterations: usize,
    fast_iterations: usize,
    reference_cold_us: f64,
    fast_cold_us: f64,
    fast_memoised_transform_us: f64,
    cold_speedup: f64,
    memoised_speedup: f64,
    bit_identical: bool,
    smoke: bool,
}

/// Mean microseconds per call of `f` over `iterations × configs.len()`
/// evaluations (each config evaluated once per iteration).
fn time_per_eval_us<T>(
    iterations: usize,
    configs: &[MappingConfig],
    mut f: impl FnMut(&MappingConfig) -> T,
) -> f64 {
    let started = Instant::now();
    for _ in 0..iterations {
        for config in configs {
            std::hint::black_box(f(config));
        }
    }
    started.elapsed().as_secs_f64() * 1e6 / (iterations * configs.len()) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/evaluator_fastpath.json".to_string());

    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator: Evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(VALIDATION_SAMPLES)
        .build()
        .expect("evaluator preset is valid");

    // A population of random genomes — the candidates an NSGA-II
    // generation would evaluate cold.
    let mut rng = StdRng::seed_from_u64(2023);
    let genomes = if smoke { 6 } else { 16 };
    let configs: Vec<MappingConfig> = (0..genomes)
        .map(|_| {
            Genome::random(&network, &platform, &mut rng)
                .decode(&network, &platform)
                .expect("random genome decodes")
        })
        .collect();
    let transformed: Vec<DynamicNetwork> = configs
        .iter()
        .map(|config| {
            DynamicNetwork::transform(&network, &config.partition, &config.indicator)
                .expect("transform succeeds")
        })
        .collect();

    // Bit-identity gate before timing anything.
    for config in &configs {
        let fast = evaluator.evaluate(config).expect("fast path succeeds");
        let reference = evaluator
            .evaluate_reference(config)
            .expect("reference path succeeds");
        assert_eq!(fast, reference, "fast path diverged from reference");
        assert_eq!(
            fast.objective.to_bits(),
            reference.objective.to_bits(),
            "objective bits diverged"
        );
    }

    let reference_iterations = if smoke { 2 } else { 10 };
    let fast_iterations = if smoke { 40 } else { 200 };

    let reference_cold_us = time_per_eval_us(reference_iterations, &configs, |config| {
        evaluator.evaluate_reference(config).expect("reference")
    });
    let fast_cold_us = time_per_eval_us(fast_iterations, &configs, |config| {
        evaluator.evaluate(config).expect("fast")
    });
    let memoised = {
        let started = Instant::now();
        for _ in 0..fast_iterations {
            for (config, dynamic) in configs.iter().zip(&transformed) {
                std::hint::black_box(
                    evaluator
                        .evaluate_transformed(dynamic, config)
                        .expect("fast transformed"),
                );
            }
        }
        started.elapsed().as_secs_f64() * 1e6 / (fast_iterations * configs.len()) as f64
    };

    let report = FastPathReport {
        bench: "evaluator_fastpath".to_string(),
        model: MODEL.to_string(),
        platform: PLATFORM.to_string(),
        validation_samples: VALIDATION_SAMPLES,
        genomes,
        reference_iterations,
        fast_iterations,
        reference_cold_us,
        fast_cold_us,
        fast_memoised_transform_us: memoised,
        cold_speedup: reference_cold_us / fast_cold_us.max(1e-9),
        memoised_speedup: reference_cold_us / memoised.max(1e-9),
        bit_identical: true,
        smoke,
    };

    println!(
        "evaluator fast path — {MODEL} on {PLATFORM}, {VALIDATION_SAMPLES} samples, {genomes} cold genomes"
    );
    println!(
        "  reference pipeline : {:>10.1} µs/eval  ({} iterations)",
        report.reference_cold_us, reference_iterations
    );
    println!(
        "  fast path          : {:>10.1} µs/eval  ({:.1}x)",
        report.fast_cold_us, report.cold_speedup
    );
    println!(
        "  + memoised transform: {:>9.1} µs/eval  ({:.1}x)",
        report.fast_memoised_transform_us, report.memoised_speedup
    );

    mnc_bench::write_json_report(&json_path, &report);

    if smoke {
        assert!(
            report.cold_speedup >= 10.0,
            "cold fast-path speedup {:.1}x below the 10x acceptance threshold",
            report.cold_speedup
        );
        println!("smoke: bit-identity and >=10x cold speedup verified");
    }
}
