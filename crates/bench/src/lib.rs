//! Shared harness utilities for the experiment binaries and benchmarks.
//!
//! Every table and figure of the paper's evaluation section has a
//! dedicated binary in `src/bin/`:
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 1 (motivational comparison) | `fig1_motivation` |
//! | Table II (Pareto breakdown, Visformer + VGG-19) | `table2_pareto` |
//! | Fig. 6 (search scatter, three reuse constraints) | `fig6_search` |
//! | Fig. 7 (energy-oriented models vs DLA baseline) | `fig7_energy_models` |
//! | §VI-D (VGG-19 generalisation) | `vgg19_generalization` |
//!
//! The binaries print the reproduced rows/series to stdout and write
//! machine-readable JSON under `results/`. The search budget is selected
//! with the `MNC_BUDGET` environment variable: `ci` (seconds), `default`
//! (tens of seconds) or `paper` (the full 200×60 evaluation budget).

use mnc_core::{Constraints, Evaluator, EvaluatorBuilder};
use mnc_dynamic::AccuracyProfile;
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::models::{vgg19, visformer, ModelPreset};
use mnc_nn::Network;
use mnc_optim::{MappingSearch, SearchConfig, SearchOutcome};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Which architecture an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Visformer (ViT-style) on CIFAR-100.
    Visformer,
    /// VGG-19 (CNN) on CIFAR-100.
    Vgg19,
}

impl Workload {
    /// Builds the network for this workload.
    pub fn network(&self) -> Network {
        match self {
            Workload::Visformer => visformer(ModelPreset::cifar100()),
            Workload::Vgg19 => vgg19(ModelPreset::cifar100()),
        }
    }

    /// The accuracy profile preset for this workload.
    pub fn accuracy_profile(&self) -> AccuracyProfile {
        match self {
            Workload::Visformer => AccuracyProfile::visformer_cifar100(),
            Workload::Vgg19 => AccuracyProfile::vgg19_cifar100(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Visformer => "visformer",
            Workload::Vgg19 => "vgg19",
        }
    }
}

/// Search budget presets selected via the `MNC_BUDGET` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// A few seconds; used by CI and the default `cargo bench` run.
    Ci,
    /// Tens of seconds; the default for the harness binaries.
    Default,
    /// The paper's full budget (200 generations × 60 candidates).
    Paper,
}

impl Budget {
    /// Reads the budget from `MNC_BUDGET` (defaults to
    /// [`Budget::Default`]).
    pub fn from_env() -> Self {
        match std::env::var("MNC_BUDGET").unwrap_or_default().as_str() {
            "ci" => Budget::Ci,
            "paper" => Budget::Paper,
            _ => Budget::Default,
        }
    }

    /// The corresponding search configuration.
    pub fn search_config(&self, seed: u64) -> SearchConfig {
        match self {
            Budget::Ci => SearchConfig {
                generations: 6,
                population_size: 16,
                seed,
                parallel: true,
                ..SearchConfig::fast()
            },
            Budget::Default => SearchConfig {
                generations: 30,
                population_size: 32,
                seed,
                parallel: true,
                ..SearchConfig::paper()
            },
            Budget::Paper => SearchConfig {
                seed,
                ..SearchConfig::paper()
            },
        }
    }

    /// Number of synthetic validation samples to evaluate accuracy on.
    pub fn validation_samples(&self) -> usize {
        match self {
            Budget::Ci => 1_000,
            Budget::Default => 4_000,
            Budget::Paper => 10_000,
        }
    }
}

/// Builds the standard evaluator used by the experiments: the chosen
/// workload on the AGX Xavier preset with the given feature-map-reuse
/// constraint.
///
/// # Errors
///
/// Returns an error when the evaluator cannot be built (invalid
/// constraints), which does not happen for the presets used here.
pub fn build_evaluator(
    workload: Workload,
    fmap_limit: Option<f64>,
    budget: Budget,
) -> Result<Evaluator, mnc_core::CoreError> {
    let constraints = match fmap_limit {
        Some(limit) => Constraints::with_fmap_reuse_limit(limit),
        None => Constraints::default(),
    };
    EvaluatorBuilder::new(workload.network(), Platform::agx_xavier())
        .accuracy_profile(workload.accuracy_profile())
        .validation_samples(budget.validation_samples())
        .constraints(constraints)
        .build()
}

/// Runs the evolutionary search for a workload under a feature-map-reuse
/// constraint and returns the evaluator together with the outcome.
///
/// # Errors
///
/// Returns an error when the evaluator cannot be built or the search fails.
pub fn run_search(
    workload: Workload,
    fmap_limit: Option<f64>,
    budget: Budget,
    seed: u64,
) -> Result<(Evaluator, SearchOutcome), Box<dyn std::error::Error>> {
    let evaluator = build_evaluator(workload, fmap_limit, budget)?;
    let outcome = MappingSearch::new(&evaluator, budget.search_config(seed)).run()?;
    Ok((evaluator, outcome))
}

/// Single-compute-unit baseline numbers for a workload (GPU-only and
/// DLA-only), as used in Fig. 1 / Table II.
///
/// # Errors
///
/// Returns an error if the platform rejects the baseline evaluation.
pub fn single_cu_baselines(
    evaluator: &Evaluator,
) -> Result<(mnc_core::BaselineResult, mnc_core::BaselineResult), mnc_core::CoreError> {
    let gpu = evaluator.baseline_single_cu(CuId(0))?;
    let dla = evaluator.baseline_single_cu(CuId(1))?;
    Ok((gpu, dla))
}

/// Accuracy-drop ladder used when picking "Ours-L" / "Ours-E" from a Pareto
/// front: prefer configurations within 0.5% of the baseline (the paper's
/// highlighted points), then progressively relax up to 6% (the drop the
/// paper reports under the 50% reuse constraint).
pub const ACCURACY_DROP_LADDER: [f64; 5] = [0.005, 0.02, 0.04, 0.06, 0.08];

/// Picks the energy-oriented Pareto configuration with the smallest
/// tolerated accuracy drop (walking up [`ACCURACY_DROP_LADDER`]).
pub fn pick_energy_oriented(outcome: &SearchOutcome) -> Option<&mnc_optim::EvaluatedConfig> {
    ACCURACY_DROP_LADDER
        .iter()
        .find_map(|drop| outcome.energy_oriented(*drop))
}

/// Picks the latency-oriented Pareto configuration with the smallest
/// tolerated accuracy drop (walking up [`ACCURACY_DROP_LADDER`]).
pub fn pick_latency_oriented(outcome: &SearchOutcome) -> Option<&mnc_optim::EvaluatedConfig> {
    ACCURACY_DROP_LADDER
        .iter()
        .find_map(|drop| outcome.latency_oriented(*drop))
}

/// Directory where the harness binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MNC_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Serialises `value` as pretty JSON into `results/<name>.json`; on any I/O
/// problem the error is reported on stderr and the experiment continues
/// (writing results is best-effort, printing them is the contract).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path: PathBuf = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Serialises `value` as pretty JSON (trailing newline) to an explicit
/// path, creating parent directories — the writer behind the throughput /
/// fast-path binaries' `--json <path>` flags. Unlike [`write_json`], the
/// caller asked for this exact file, so I/O failures panic instead of
/// degrading to a warning.
///
/// # Panics
///
/// Panics when the directory cannot be created, the value cannot be
/// serialised or the file cannot be written.
pub fn write_json_report<T: Serialize>(path: &str, value: &T) {
    if let Some(parent) = Path::new(path).parent() {
        std::fs::create_dir_all(parent).expect("create report directory");
    }
    let json = serde_json::to_string_pretty(value).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write report");
    println!("json report written to {path}");
}

/// Formats a ratio as `x.xx×`.
pub fn format_factor(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a percentage with one decimal.
pub fn format_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Prints a Markdown-style table with the given header and rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Returns true when `path` exists and is a directory (helper for tests).
pub fn is_dir(path: &Path) -> bool {
    path.is_dir()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_from_env_defaults_and_parses() {
        // Note: avoid mutating the process environment; just exercise the
        // mapping logic through the public API.
        assert_eq!(Budget::Ci.validation_samples(), 1_000);
        assert_eq!(Budget::Paper.search_config(1).generations, 200);
        assert_eq!(Budget::Ci.search_config(1).seed, 1);
        assert!(Budget::Default.search_config(5).parallel);
    }

    #[test]
    fn workloads_build_their_networks() {
        assert_eq!(Workload::Visformer.network().name(), "visformer");
        assert_eq!(Workload::Vgg19.network().name(), "vgg19");
        assert_eq!(Workload::Visformer.name(), "visformer");
        assert!(Workload::Vgg19.accuracy_profile().baseline_accuracy < 0.82);
    }

    #[test]
    fn evaluator_builds_for_both_workloads() {
        for workload in [Workload::Visformer, Workload::Vgg19] {
            let evaluator = build_evaluator(workload, Some(0.75), Budget::Ci).unwrap();
            let (gpu, dla) = single_cu_baselines(&evaluator).unwrap();
            assert!(gpu.latency_ms < dla.latency_ms);
            assert!(gpu.energy_mj > dla.energy_mj);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_factor(2.1234), "2.12x");
        assert_eq!(format_percent(0.5), "50.0%");
    }
}
