//! Baseline deployment schemes the paper compares against.
//!
//! * **GPU-only / DLA-only** — the whole, unmodified network runs on a
//!   single compute unit at its maximum frequency (Table II's first rows
//!   and the left bars of Fig. 1).
//! * **Static distributed** — the network is width-partitioned and spread
//!   over the compute units exactly like a Map-and-Conquer configuration,
//!   but *without* dynamic exits: every stage always executes and only the
//!   final exit produces the prediction (the "Static Mapping" bars of
//!   Fig. 1).

use crate::config::MappingConfig;
use crate::error::CoreError;
use crate::evaluator::Evaluator;
use crate::perf::evaluate_performance;
use mnc_dynamic::{AccuracyProfile, DynamicNetwork};
use mnc_mpsoc::CuId;
use serde::{Deserialize, Serialize};

/// Which baseline a [`BaselineResult`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// The whole network on one compute unit.
    SingleCu(CuId),
    /// Width-partitioned concurrent execution without early exits.
    StaticDistributed,
}

/// Latency/energy/accuracy of a baseline deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Which baseline this is.
    pub kind: BaselineKind,
    /// Human-readable label (e.g. `"gpu-only"`).
    pub label: String,
    /// Per-inference latency in milliseconds.
    pub latency_ms: f64,
    /// Per-inference energy in millijoules.
    pub energy_mj: f64,
    /// Top-1 accuracy of the deployment.
    pub accuracy: f64,
    /// Feature-map reuse ratio (only meaningful for distributed baselines).
    pub fmap_reuse: Option<f64>,
}

/// Picks the accuracy profile preset matching a network name; falls back to
/// a generic profile for unknown architectures.
pub fn default_accuracy_profile(network_name: &str) -> AccuracyProfile {
    let name = network_name.to_ascii_lowercase();
    if name.contains("visformer") || name.contains("vit") {
        AccuracyProfile::visformer_cifar100()
    } else if name.contains("vgg") {
        AccuracyProfile::vgg19_cifar100()
    } else {
        AccuracyProfile {
            baseline_accuracy: 0.85,
            max_accuracy: 0.85,
            quality_exponent: 2.5,
            exit_confidence: 0.95,
        }
    }
}

impl Evaluator {
    /// Evaluates the single-compute-unit baseline: the full network on `cu`
    /// at maximum frequency, accuracy equal to the pretrained baseline.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown compute units.
    pub fn baseline_single_cu(&self, cu: CuId) -> Result<BaselineResult, CoreError> {
        let unit = self.platform().compute_unit(cu)?;
        let (latency_ms, energy_mj) = self.platform().single_cu_baseline(self.network(), cu)?;
        Ok(BaselineResult {
            kind: BaselineKind::SingleCu(cu),
            label: format!("{}-only", unit.name()),
            latency_ms,
            energy_mj,
            accuracy: self.baseline_accuracy(),
            fmap_reuse: None,
        })
    }

    /// Evaluates the static distributed baseline for a configuration: the
    /// same partitioning/mapping/DVFS, but all stages always execute and
    /// only the final exit is used.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is inconsistent with the
    /// network or platform.
    pub fn baseline_static_distributed(
        &self,
        config: &MappingConfig,
    ) -> Result<BaselineResult, CoreError> {
        let dynamic =
            DynamicNetwork::transform(self.network(), &config.partition, &config.indicator)?;
        let perf = evaluate_performance(&dynamic, config, self.platform(), self.estimator())?;
        // Without early exits every input pays the full makespan and the
        // energy of all stages; the prediction quality is that of the final
        // stage.
        let final_accuracy = self
            .accuracy_model()
            .stage_accuracy(&dynamic, dynamic.num_stages().saturating_sub(1));
        Ok(BaselineResult {
            kind: BaselineKind::StaticDistributed,
            label: "static-distributed".to_string(),
            latency_ms: perf.makespan_ms(),
            energy_mj: perf.total_energy_mj(),
            accuracy: final_accuracy,
            fmap_reuse: Some(dynamic.fmap_reuse_ratio()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvaluatorBuilder;
    use mnc_mpsoc::Platform;
    use mnc_nn::models::{visformer, visformer_tiny, ModelPreset};

    fn xavier_evaluator() -> Evaluator {
        EvaluatorBuilder::new(visformer(ModelPreset::cifar100()), Platform::agx_xavier())
            .validation_samples(2000)
            .build()
            .unwrap()
    }

    #[test]
    fn default_profiles_match_architectures() {
        assert_eq!(
            default_accuracy_profile("visformer").baseline_accuracy,
            AccuracyProfile::visformer_cifar100().baseline_accuracy
        );
        assert_eq!(
            default_accuracy_profile("vgg19").baseline_accuracy,
            AccuracyProfile::vgg19_cifar100().baseline_accuracy
        );
        let generic = default_accuracy_profile("resnet50");
        assert!(generic.validate().is_ok());
    }

    #[test]
    fn single_cu_baselines_reproduce_the_gpu_dla_tradeoff() {
        let evaluator = xavier_evaluator();
        let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
        let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
        assert_eq!(gpu.label, "gpu-only");
        assert_eq!(dla.label, "dla0-only");
        assert!(gpu.latency_ms < dla.latency_ms);
        assert!(gpu.energy_mj > dla.energy_mj);
        assert_eq!(gpu.accuracy, evaluator.baseline_accuracy());
        assert!(evaluator.baseline_single_cu(CuId(9)).is_err());
    }

    #[test]
    fn static_distributed_sits_between_the_single_cu_baselines() {
        let evaluator = xavier_evaluator();
        let config = MappingConfig::uniform(evaluator.network(), evaluator.platform()).unwrap();
        let static_dist = evaluator.baseline_static_distributed(&config).unwrap();
        let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
        let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
        // Distributing width slices across GPU+2DLA must beat the DLA-only
        // latency and the GPU-only energy (the motivation of Fig. 1).
        assert!(
            static_dist.latency_ms < dla.latency_ms,
            "static {} vs dla {}",
            static_dist.latency_ms,
            dla.latency_ms
        );
        assert!(
            static_dist.energy_mj < gpu.energy_mj,
            "static {} vs gpu {}",
            static_dist.energy_mj,
            gpu.energy_mj
        );
        assert_eq!(static_dist.fmap_reuse, Some(1.0));
    }

    #[test]
    fn dynamic_mapping_improves_on_static_distributed() {
        let evaluator = EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(2000)
        .build()
        .unwrap();
        let config = MappingConfig::uniform(evaluator.network(), evaluator.platform()).unwrap();
        let static_dist = evaluator.baseline_static_distributed(&config).unwrap();
        let dynamic = evaluator.evaluate(&config).unwrap();
        // Early exits can only reduce the expected energy relative to
        // always running every stage.
        assert!(dynamic.average_energy_mj < static_dist.energy_mj);
        assert!(dynamic.average_latency_ms <= static_dist.latency_ms + 1e-9);
    }
}
