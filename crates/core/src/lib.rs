//! Map-and-Conquer core: configurations, performance model, evaluator.
//!
//! This crate ties the model side ([`mnc_dynamic`]) and the hardware side
//! ([`mnc_mpsoc`], [`mnc_predictor`]) of the framework together. It
//! implements the paper's system model and problem formulation:
//!
//! * [`config`] — the full mapping configuration `Π = (P, I, M, ϑ)`
//!   (partitioning, feature-map reuse, stage→compute-unit mapping, DVFS),
//! * [`estimator`] — how per-layer latency/energy numbers are obtained:
//!   directly from the analytic hardware model or through the trained
//!   gradient-boosted surrogate (the paper's XGBoost path),
//! * [`perf`] — the concurrent execution model of eq. 8–14: per-stage
//!   cumulative latency with inter-stage feature dependencies and transfer
//!   overheads, per-stage energy,
//! * [`simulator`] — an event-driven execution simulator used to validate
//!   the closed-form recursion and to produce execution traces,
//! * [`objective`] — constraints and the optimisation objective of eq. 15–16,
//! * [`evaluator`] — end-to-end evaluation of a candidate configuration
//!   (latency, energy, accuracy, memory, objective),
//! * [`baselines`] — the GPU-only / DLA-only / static-distributed mappings
//!   the paper compares against.
//!
//! # Example
//!
//! ```
//! use mnc_core::{Evaluator, EvaluatorBuilder, MappingConfig};
//! use mnc_mpsoc::Platform;
//! use mnc_nn::models::{visformer_tiny, ModelPreset};
//!
//! # fn main() -> Result<(), mnc_core::CoreError> {
//! let network = visformer_tiny(ModelPreset::cifar100());
//! let platform = Platform::dual_test();
//! let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone()).build()?;
//!
//! // Evaluate an even two-way split mapped onto the two compute units.
//! let config = MappingConfig::uniform(&network, &platform)?;
//! let result = evaluator.evaluate(&config)?;
//! assert!(result.average_latency_ms > 0.0);
//! assert!(result.average_energy_mj > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod error;
pub mod estimator;
pub mod evaluator;
pub mod fingerprint;
pub mod objective;
pub mod perf;
pub mod simulator;
pub mod tables;

pub use baselines::{BaselineKind, BaselineResult};
pub use config::{DvfsAssignment, Mapping, MappingConfig};
pub use error::CoreError;
pub use estimator::Estimator;
pub use evaluator::{EvaluationResult, Evaluator, EvaluatorBuilder};
pub use fingerprint::{fingerprint_serialized, Fingerprint, StableHasher};
pub use objective::{Constraints, ObjectiveWeights};
pub use perf::{PerformanceBreakdown, StagePerformance};
pub use simulator::{ExecutionTrace, SliceEvent};
pub use tables::CostTable;
