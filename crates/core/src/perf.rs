//! Concurrent performance model (paper eq. 8–14).
//!
//! Every stage runs on its own compute unit. Within a stage, layer slices
//! execute sequentially; a slice can start only once the slice of the
//! previous layer on the *same* stage has finished **and** every forwarded
//! feature map from earlier stages has both been produced and transferred
//! through shared memory (the `u_{k→i}` overhead). The cumulative latency
//! recursion is:
//!
//! ```text
//! T^j_i = τ^j_i + max{ T^{j-1}_i , T^{j-1}_k + u^{j-1}_{k→i} | I_k = 1, k < i }
//! ```
//!
//! The stage latency is `T_{S_i} = T^n_i` (eq. 9), the configuration's
//! worst-case latency is `max_i T_{S_i}` (eq. 13) and its full energy is
//! `Σ_i E_{S_i}` (eq. 14).

use crate::config::MappingConfig;
use crate::error::CoreError;
use crate::estimator::Estimator;
use crate::tables::CostTable;
use crate::tables::QuantizedCostTable;
use mnc_dynamic::{DynamicNetwork, LayerSlice, QuantSliceGrid, SliceGrid};
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::LayerId;
use serde::{Deserialize, Serialize};

/// Latency/energy outcome of one stage under the concurrent model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePerformance {
    /// Stage index.
    pub stage: usize,
    /// Compute unit the stage is mapped to.
    pub cu: CuId,
    /// Completion time `T_{S_i}` of the stage, including waits on
    /// dependencies and transfers, measured from inference start.
    pub latency_ms: f64,
    /// Pure execution time of the stage's slices (no waiting).
    pub busy_ms: f64,
    /// Energy consumed by the stage's slices (`E_{S_i}`), including the
    /// interconnect energy of the transfers it receives.
    pub energy_mj: f64,
    /// Total transfer latency the stage had to pay for forwarded features.
    pub transfer_ms: f64,
    /// Interconnect energy of the transfers the stage received.
    pub transfer_energy_mj: f64,
}

/// Performance of a full configuration across all stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceBreakdown {
    /// Per-stage results, in stage order.
    pub stages: Vec<StagePerformance>,
}

impl PerformanceBreakdown {
    /// Worst-case latency when every stage is instantiated
    /// (`max_i T_{S_i}`, eq. 13).
    pub fn makespan_ms(&self) -> f64 {
        self.latency_with_stages(self.stages.len())
    }

    /// Total energy when every stage is instantiated (`Σ_i E_{S_i}`,
    /// eq. 14).
    pub fn total_energy_mj(&self) -> f64 {
        self.energy_with_stages(self.stages.len())
    }

    /// Latency experienced when only the first `count` stages are
    /// instantiated (an input exiting at stage `count - 1`).
    pub fn latency_with_stages(&self, count: usize) -> f64 {
        self.stages
            .iter()
            .take(count)
            .map(|s| s.latency_ms)
            .fold(0.0, f64::max)
    }

    /// Energy consumed when only the first `count` stages are instantiated.
    pub fn energy_with_stages(&self, count: usize) -> f64 {
        self.stages.iter().take(count).map(|s| s.energy_mj).sum()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Evaluates the concurrent performance model for a transformed network
/// under a mapping configuration.
///
/// # Errors
///
/// Returns an error when the configuration's stage count does not match the
/// dynamic network or when the hardware model rejects a compute unit / DVFS
/// level.
pub fn evaluate_performance(
    dynamic: &DynamicNetwork,
    config: &MappingConfig,
    platform: &Platform,
    estimator: &Estimator,
) -> Result<PerformanceBreakdown, CoreError> {
    let network = dynamic.network();
    evaluate_performance_with(dynamic, config, platform, |cu, dvfs_level, slice| {
        let layer = network.layer(slice.layer)?;
        estimator.estimate(platform, cu, layer, &slice.cost, dvfs_level)
    })
}

/// [`evaluate_performance`] driven by a precomputed [`CostTable`] instead
/// of per-slice estimator dispatch — the evaluator's fast path for the
/// analytic estimator. Produces bit-identical results: both paths share
/// the same recursion and the table reproduces the analytic estimates
/// exactly (see `crate::tables`).
///
/// # Errors
///
/// Same failure modes as [`evaluate_performance`].
pub fn evaluate_performance_tabled(
    dynamic: &DynamicNetwork,
    config: &MappingConfig,
    platform: &Platform,
    table: &CostTable,
) -> Result<PerformanceBreakdown, CoreError> {
    evaluate_performance_with(dynamic, config, platform, |cu, dvfs_level, slice| {
        table.estimate(cu, dvfs_level, slice.layer, &slice.cost)
    })
}

/// [`evaluate_performance_tabled`] over a [`SliceGrid`] instead of a
/// materialised [`DynamicNetwork`] — the fused evaluation path.
///
/// Transfers are derived on the fly from the grid's width fractions and
/// the indicator, with the same conditions, byte expressions, iteration
/// order and accumulation order as the slice lists the transform builds,
/// so every output float is bit-identical to
/// [`evaluate_performance_tabled`] on the corresponding dynamic network
/// (property-tested in `tests/fast_path.rs`). `output_bytes` carries each
/// layer's output-feature byte count (precomputed once per evaluator —
/// the shapes never change).
///
/// # Errors
///
/// Same failure modes as [`evaluate_performance_tabled`].
pub fn evaluate_performance_grid(
    grid: &SliceGrid,
    config: &MappingConfig,
    platform: &Platform,
    table: &CostTable,
    output_bytes: &[f64],
) -> Result<PerformanceBreakdown, CoreError> {
    evaluate_performance_flat(
        grid.num_stages(),
        grid.num_layers(),
        |layer, stage| grid.own_fraction(layer, stage),
        |stage, layer, cu, dvfs_level| {
            table.estimate(cu, dvfs_level, LayerId(layer), grid.cost(stage, layer))
        },
        config,
        platform,
        output_bytes,
    )
}

/// [`evaluate_performance_grid`] over a [`QuantSliceGrid`] and a
/// [`QuantizedCostTable`]: every slice's `(latency, energy)` is a direct
/// table read instead of a slice-cost computation plus coefficient
/// evaluation. Bit-identical by construction — the table entries were
/// produced by the same calls on the same exact fractions.
///
/// # Errors
///
/// Same failure modes as [`evaluate_performance_grid`].
pub fn evaluate_performance_quant(
    grid: &QuantSliceGrid,
    config: &MappingConfig,
    platform: &Platform,
    table: &QuantizedCostTable,
    output_bytes: &[f64],
) -> Result<PerformanceBreakdown, CoreError> {
    evaluate_performance_flat(
        grid.num_stages(),
        grid.num_layers(),
        |layer, stage| grid.own_fraction(layer, stage),
        |stage, layer, cu, dvfs_level| {
            let (out_k, in_k) = grid.slice_eighths(stage, layer);
            Ok(table.lookup(cu, dvfs_level, layer, out_k, in_k))
        },
        config,
        platform,
        output_bytes,
    )
}

/// The flat-storage concurrent-model recursion shared by the grid and
/// quantised fast paths: identical to [`evaluate_performance_with`]'s
/// recursion, with per-slice estimates and width fractions supplied by
/// closures and transfers derived on the fly.
fn evaluate_performance_flat<OwnF, EstimateF>(
    num_stages: usize,
    num_layers: usize,
    own: OwnF,
    mut estimate: EstimateF,
    config: &MappingConfig,
    platform: &Platform,
    output_bytes: &[f64],
) -> Result<PerformanceBreakdown, CoreError>
where
    OwnF: Fn(usize, usize) -> f64,
    EstimateF: FnMut(usize, usize, CuId, usize) -> Result<(f64, f64), CoreError>,
{
    if config.num_stages() != num_stages {
        return Err(CoreError::InvalidMapping {
            reason: format!(
                "configuration has {} stages but the dynamic network has {num_stages}",
                config.num_stages()
            ),
        });
    }
    debug_assert_eq!(output_bytes.len(), num_layers);
    let indicator = &config.indicator;
    let interconnect = platform.interconnect();

    // finish[stage * num_layers + layer] = cumulative completion time.
    let mut finish = vec![0.0f64; num_stages * num_layers];
    let mut stages = Vec::with_capacity(num_stages);
    for stage_index in 0..num_stages {
        let cu = config
            .mapping
            .compute_unit(stage_index)
            .expect("stage count checked above");
        let dvfs_level = config
            .dvfs
            .level(stage_index)
            .expect("stage count checked above");

        let mut busy_ms = 0.0;
        let mut energy_mj = 0.0;
        let mut transfer_ms = 0.0;
        let mut transfer_energy_mj = 0.0;

        for layer_index in 0..num_layers {
            let (tau, e) = estimate(stage_index, layer_index, cu, dvfs_level)?;
            busy_ms += tau;
            energy_mj += e;

            // Dependency on the previous layer of the same stage.
            let mut ready_ms = if layer_index == 0 {
                0.0
            } else {
                finish[stage_index * num_layers + layer_index - 1]
            };
            // Dependencies on forwarded features of earlier stages: the
            // transfers the transform would have recorded on this slice,
            // derived with the same condition (`forwarded && own > 0`),
            // bytes and earlier-stage order.
            if let Some(prev) = layer_index.checked_sub(1) {
                let prev_bytes = output_bytes[prev];
                for earlier in 0..stage_index {
                    let own_frac = own(prev, earlier);
                    if indicator.is_forwarded(LayerId(prev), earlier) && own_frac > 0.0 {
                        let bytes = prev_bytes * own_frac;
                        let producer_finish = finish[earlier * num_layers + layer_index - 1];
                        let u = interconnect.transfer_ms(bytes);
                        transfer_ms += u;
                        transfer_energy_mj += interconnect.transfer_energy_mj(bytes);
                        ready_ms = ready_ms.max(producer_finish + u);
                    }
                }
            }
            finish[stage_index * num_layers + layer_index] = ready_ms + tau;
        }

        energy_mj += transfer_energy_mj;
        stages.push(StagePerformance {
            stage: stage_index,
            cu,
            latency_ms: if num_layers == 0 {
                0.0
            } else {
                finish[stage_index * num_layers + num_layers - 1]
            },
            busy_ms,
            energy_mj,
            transfer_ms,
            transfer_energy_mj,
        });
    }

    Ok(PerformanceBreakdown { stages })
}

/// The shared concurrent-model recursion, generic over how a slice's
/// `(latency, energy)` is produced.
fn evaluate_performance_with<F>(
    dynamic: &DynamicNetwork,
    config: &MappingConfig,
    platform: &Platform,
    mut estimate: F,
) -> Result<PerformanceBreakdown, CoreError>
where
    F: FnMut(CuId, usize, &LayerSlice) -> Result<(f64, f64), CoreError>,
{
    let num_stages = dynamic.num_stages();
    if config.num_stages() != num_stages {
        return Err(CoreError::InvalidMapping {
            reason: format!(
                "configuration has {} stages but the dynamic network has {num_stages}",
                config.num_stages()
            ),
        });
    }
    let network = dynamic.network();
    let interconnect = platform.interconnect();
    let num_layers = network.num_layers();

    // finish[stage][layer] = cumulative completion time T^j_i.
    let mut finish = vec![vec![0.0f64; num_layers]; num_stages];
    let mut stages = Vec::with_capacity(num_stages);

    for stage_index in 0..num_stages {
        let cu = config
            .mapping
            .compute_unit(stage_index)
            .expect("stage count checked above");
        let dvfs_level = config
            .dvfs
            .level(stage_index)
            .expect("stage count checked above");
        let stage = dynamic
            .stage(stage_index)
            .expect("stage count checked above");

        let mut busy_ms = 0.0;
        let mut energy_mj = 0.0;
        let mut transfer_ms = 0.0;
        let mut transfer_energy_mj = 0.0;

        for (layer_index, slice) in stage.slices.iter().enumerate() {
            let (tau, e) = estimate(cu, dvfs_level, slice)?;
            busy_ms += tau;
            energy_mj += e;

            // Dependency on the previous layer of the same stage.
            let mut ready_ms = if layer_index == 0 {
                0.0
            } else {
                finish[stage_index][layer_index - 1]
            };
            // Dependencies on forwarded features of earlier stages.
            for transfer in &slice.incoming {
                let producer_finish = if layer_index == 0 {
                    0.0
                } else {
                    finish[transfer.from_stage][layer_index - 1]
                };
                let u = interconnect.transfer_ms(transfer.bytes);
                transfer_ms += u;
                transfer_energy_mj += interconnect.transfer_energy_mj(transfer.bytes);
                ready_ms = ready_ms.max(producer_finish + u);
            }
            finish[stage_index][layer_index] = ready_ms + tau;
        }

        energy_mj += transfer_energy_mj;
        stages.push(StagePerformance {
            stage: stage_index,
            cu,
            latency_ms: finish[stage_index].last().copied().unwrap_or(0.0),
            busy_ms,
            energy_mj,
            transfer_ms,
            transfer_energy_mj,
        });
    }

    Ok(PerformanceBreakdown { stages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_dynamic::{IndicatorMatrix, PartitionMatrix};
    use mnc_nn::models::{tiny_cnn, visformer_tiny, ModelPreset};
    use mnc_nn::Network;

    fn setup(net: &Network, reuse: bool) -> (DynamicNetwork, MappingConfig, Platform) {
        let platform = Platform::dual_test();
        let partition = PartitionMatrix::from_stage_fractions(net, &[0.625, 0.375]).unwrap();
        let indicator = if reuse {
            IndicatorMatrix::full(net, 2)
        } else {
            IndicatorMatrix::none(net, 2)
        };
        let dynamic = DynamicNetwork::transform(net, &partition, &indicator).unwrap();
        let mapping = crate::config::Mapping::identity(&platform);
        let dvfs = crate::config::DvfsAssignment::max_frequency(&mapping, &platform).unwrap();
        let config = MappingConfig::new(partition, indicator, mapping, dvfs).unwrap();
        (dynamic, config, platform)
    }

    #[test]
    fn per_stage_latency_at_least_busy_time() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let (dynamic, config, platform) = setup(&net, true);
        let perf =
            evaluate_performance(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        assert_eq!(perf.num_stages(), 2);
        for stage in &perf.stages {
            assert!(stage.latency_ms >= stage.busy_ms - 1e-9);
            assert!(stage.energy_mj > 0.0);
        }
    }

    #[test]
    fn makespan_is_max_and_energy_is_sum() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let (dynamic, config, platform) = setup(&net, true);
        let perf =
            evaluate_performance(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        let max_latency = perf.stages.iter().map(|s| s.latency_ms).fold(0.0, f64::max);
        let sum_energy: f64 = perf.stages.iter().map(|s| s.energy_mj).sum();
        assert!((perf.makespan_ms() - max_latency).abs() < 1e-12);
        assert!((perf.total_energy_mj() - sum_energy).abs() < 1e-12);
        // Single-stage views.
        assert!(perf.latency_with_stages(1) <= perf.makespan_ms() + 1e-12);
        assert!(perf.energy_with_stages(1) < perf.total_energy_mj());
    }

    #[test]
    fn forwarding_adds_transfer_overheads_to_later_stages() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let (dyn_reuse, cfg_reuse, platform) = setup(&net, true);
        let (dyn_none, cfg_none, _) = setup(&net, false);
        let with =
            evaluate_performance(&dyn_reuse, &cfg_reuse, &platform, &Estimator::Analytic).unwrap();
        let without =
            evaluate_performance(&dyn_none, &cfg_none, &platform, &Estimator::Analytic).unwrap();
        assert_eq!(with.stages[0].transfer_ms, 0.0);
        assert!(with.stages[1].transfer_ms > 0.0);
        assert_eq!(without.stages[1].transfer_ms, 0.0);
        assert!(with.stages[1].transfer_energy_mj > 0.0);
    }

    #[test]
    fn concurrent_latency_beats_sequential_sum() {
        // The whole point of the concurrent model: the makespan is smaller
        // than executing the stages back to back.
        let net = tiny_cnn(ModelPreset::cifar100());
        let (dynamic, config, platform) = setup(&net, true);
        let perf =
            evaluate_performance(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        let sequential: f64 = perf.stages.iter().map(|s| s.busy_ms).sum::<f64>()
            + perf.stages.iter().map(|s| s.transfer_ms).sum::<f64>();
        assert!(perf.makespan_ms() < sequential);
    }

    #[test]
    fn tabled_performance_matches_estimator_path_bitwise() {
        let net = visformer_tiny(ModelPreset::cifar100());
        for reuse in [true, false] {
            let (dynamic, config, platform) = setup(&net, reuse);
            let table = CostTable::build(&net, &platform);
            let reference =
                evaluate_performance(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
            let tabled = evaluate_performance_tabled(&dynamic, &config, &platform, &table).unwrap();
            assert_eq!(reference, tabled);
            for (a, b) in reference.stages.iter().zip(&tabled.stages) {
                assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
                assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
                assert_eq!(a.busy_ms.to_bits(), b.busy_ms.to_bits());
            }
        }
    }

    #[test]
    fn stage_count_mismatch_is_rejected() {
        let net = tiny_cnn(ModelPreset::cifar100());
        let (_, config, platform) = setup(&net, true);
        // Build a dynamic network with a different stage count.
        let partition3 = PartitionMatrix::uniform(&net, 1).unwrap();
        let indicator3 = IndicatorMatrix::full(&net, 1);
        let dynamic1 = DynamicNetwork::transform(&net, &partition3, &indicator3).unwrap();
        assert!(evaluate_performance(&dynamic1, &config, &platform, &Estimator::Analytic).is_err());
    }

    #[test]
    fn lower_dvfs_increases_latency_and_cuts_power() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let partition = PartitionMatrix::uniform(&net, 2).unwrap();
        let indicator = IndicatorMatrix::full(&net, 2);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        let mapping = crate::config::Mapping::identity(&platform);
        let fast = MappingConfig::new(
            partition.clone(),
            indicator.clone(),
            mapping.clone(),
            crate::config::DvfsAssignment::max_frequency(&mapping, &platform).unwrap(),
        )
        .unwrap();
        let slow = MappingConfig::new(
            partition,
            indicator,
            mapping.clone(),
            crate::config::DvfsAssignment::new(vec![0, 0], &mapping, &platform).unwrap(),
        )
        .unwrap();
        let perf_fast =
            evaluate_performance(&dynamic, &fast, &platform, &Estimator::Analytic).unwrap();
        let perf_slow =
            evaluate_performance(&dynamic, &slow, &platform, &Estimator::Analytic).unwrap();
        assert!(perf_slow.makespan_ms() > perf_fast.makespan_ms());
        // Average power (energy / busy time) must drop at the lower frequency.
        let power = |p: &PerformanceBreakdown| {
            p.stages.iter().map(|s| s.energy_mj).sum::<f64>()
                / p.stages.iter().map(|s| s.busy_ms).sum::<f64>()
        };
        assert!(power(&perf_slow) < power(&perf_fast));
    }
}
