//! The full mapping configuration `Π = (P, I, M, ϑ)` (paper §IV).

use crate::error::CoreError;
use mnc_dynamic::{IndicatorMatrix, PartitionMatrix};
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::Network;
use serde::{Deserialize, Serialize};

/// The mapping vector `M`: which compute unit executes each stage.
///
/// Stages are indexed by execution priority (stage 0 exits first); the
/// paper requires all stages to be mapped to *distinct* compute units
/// (eq. 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    stage_to_cu: Vec<CuId>,
}

impl Mapping {
    /// Creates a mapping, validating it against a platform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidMapping`] when the vector is empty,
    /// references an unknown compute unit, or maps two stages to the same
    /// unit.
    pub fn new(stage_to_cu: Vec<CuId>, platform: &Platform) -> Result<Self, CoreError> {
        if stage_to_cu.is_empty() {
            return Err(CoreError::InvalidMapping {
                reason: "mapping must contain at least one stage".to_string(),
            });
        }
        for cu in &stage_to_cu {
            if cu.0 >= platform.num_compute_units() {
                return Err(CoreError::InvalidMapping {
                    reason: format!(
                        "compute unit {cu} does not exist on platform {}",
                        platform.name()
                    ),
                });
            }
        }
        let mut seen = vec![false; platform.num_compute_units()];
        for cu in &stage_to_cu {
            if seen[cu.0] {
                return Err(CoreError::InvalidMapping {
                    reason: format!("compute unit {cu} is assigned to more than one stage"),
                });
            }
            seen[cu.0] = true;
        }
        Ok(Mapping { stage_to_cu })
    }

    /// The identity mapping: stage `i` runs on compute unit `i`, using
    /// every unit of the platform.
    pub fn identity(platform: &Platform) -> Self {
        Mapping {
            stage_to_cu: (0..platform.num_compute_units()).map(CuId).collect(),
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stage_to_cu.len()
    }

    /// Compute unit of a stage (`None` when out of range).
    pub fn compute_unit(&self, stage: usize) -> Option<CuId> {
        self.stage_to_cu.get(stage).copied()
    }

    /// The full stage→compute-unit vector.
    pub fn as_slice(&self) -> &[CuId] {
        &self.stage_to_cu
    }
}

/// The DVFS vector `ϑ`: one frequency level per stage, interpreted on the
/// compute unit that stage is mapped to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsAssignment {
    levels: Vec<usize>,
}

impl DvfsAssignment {
    /// Creates an assignment, validating every level against the DVFS table
    /// of the stage's compute unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDvfs`] when the length differs from the
    /// mapping or a level is out of range.
    pub fn new(
        levels: Vec<usize>,
        mapping: &Mapping,
        platform: &Platform,
    ) -> Result<Self, CoreError> {
        if levels.len() != mapping.num_stages() {
            return Err(CoreError::InvalidDvfs {
                reason: format!(
                    "{} levels for {} stages",
                    levels.len(),
                    mapping.num_stages()
                ),
            });
        }
        for (stage, level) in levels.iter().enumerate() {
            let cu_id = mapping.compute_unit(stage).expect("lengths checked above");
            let cu = platform.compute_unit(cu_id)?;
            if *level >= cu.dvfs().num_levels() {
                return Err(CoreError::InvalidDvfs {
                    reason: format!(
                        "level {level} out of range for {} ({} levels)",
                        cu.name(),
                        cu.dvfs().num_levels()
                    ),
                });
            }
        }
        Ok(DvfsAssignment { levels })
    }

    /// Assignment running every stage's compute unit at its maximum
    /// frequency.
    pub fn max_frequency(mapping: &Mapping, platform: &Platform) -> Result<Self, CoreError> {
        let levels = mapping
            .as_slice()
            .iter()
            .map(|cu_id| {
                platform
                    .compute_unit(*cu_id)
                    .map(|cu| cu.dvfs().num_levels() - 1)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DvfsAssignment { levels })
    }

    /// Number of stages covered.
    pub fn num_stages(&self) -> usize {
        self.levels.len()
    }

    /// DVFS level of a stage (`None` when out of range).
    pub fn level(&self, stage: usize) -> Option<usize> {
        self.levels.get(stage).copied()
    }

    /// The raw level vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.levels
    }
}

/// A complete candidate configuration `Π = (P, I, M, ϑ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Partitioning matrix `P`.
    pub partition: PartitionMatrix,
    /// Indicator (feature-reuse) matrix `I`.
    pub indicator: IndicatorMatrix,
    /// Stage→compute-unit mapping `M`.
    pub mapping: Mapping,
    /// DVFS levels `ϑ`, one per stage.
    pub dvfs: DvfsAssignment,
}

impl MappingConfig {
    /// Assembles a configuration, checking that all four components agree
    /// on the number of stages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidMapping`] when the stage counts differ.
    pub fn new(
        partition: PartitionMatrix,
        indicator: IndicatorMatrix,
        mapping: Mapping,
        dvfs: DvfsAssignment,
    ) -> Result<Self, CoreError> {
        let stages = mapping.num_stages();
        if partition.num_stages() != stages
            || indicator.num_stages() != stages
            || dvfs.num_stages() != stages
        {
            return Err(CoreError::InvalidMapping {
                reason: format!(
                    "stage count mismatch: partition {}, indicator {}, mapping {}, dvfs {}",
                    partition.num_stages(),
                    indicator.num_stages(),
                    stages,
                    dvfs.num_stages()
                ),
            });
        }
        Ok(MappingConfig {
            partition,
            indicator,
            mapping,
            dvfs,
        })
    }

    /// The default starting configuration: one stage per compute unit, an
    /// even width split, full feature-map reuse, identity mapping and
    /// maximum frequencies.
    ///
    /// # Errors
    ///
    /// Returns an error if the platform has no compute unit.
    pub fn uniform(network: &Network, platform: &Platform) -> Result<Self, CoreError> {
        let stages = platform.num_compute_units();
        let partition = PartitionMatrix::uniform(network, stages)?;
        let indicator = IndicatorMatrix::full(network, stages);
        let mapping = Mapping::identity(platform);
        let dvfs = DvfsAssignment::max_frequency(&mapping, platform)?;
        MappingConfig::new(partition, indicator, mapping, dvfs)
    }

    /// Number of stages `M`.
    pub fn num_stages(&self) -> usize {
        self.mapping.num_stages()
    }

    /// Size of the per-layer mapping search space as computed in paper
    /// §V-A: `ratios^M × M! × |ϑ|`, where `ratios` is the number of
    /// distinct split ratios per stage and `|ϑ|` the number of DVFS
    /// combinations of the platform.
    pub fn search_space_per_layer(platform: &Platform, ratio_options: usize) -> f64 {
        let stages = platform.num_compute_units() as u32;
        let ratios = (ratio_options as f64).powi(stages as i32);
        let permutations: f64 = (1..=stages as u64).product::<u64>() as f64;
        ratios * permutations * platform.dvfs_combinations() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, ModelPreset};

    fn platform() -> Platform {
        Platform::dual_test()
    }

    #[test]
    fn identity_mapping_uses_all_units() {
        let p = platform();
        let m = Mapping::identity(&p);
        assert_eq!(m.num_stages(), 2);
        assert_eq!(m.compute_unit(0), Some(CuId(0)));
        assert_eq!(m.compute_unit(1), Some(CuId(1)));
        assert_eq!(m.compute_unit(2), None);
    }

    #[test]
    fn duplicate_and_unknown_units_are_rejected() {
        let p = platform();
        assert!(Mapping::new(vec![CuId(0), CuId(0)], &p).is_err());
        assert!(Mapping::new(vec![CuId(0), CuId(5)], &p).is_err());
        assert!(Mapping::new(vec![], &p).is_err());
        assert!(Mapping::new(vec![CuId(1), CuId(0)], &p).is_ok());
    }

    #[test]
    fn dvfs_assignment_validates_levels() {
        let p = platform();
        let m = Mapping::identity(&p);
        assert!(DvfsAssignment::new(vec![0, 2], &m, &p).is_ok());
        assert!(DvfsAssignment::new(vec![0], &m, &p).is_err());
        assert!(DvfsAssignment::new(vec![0, 99], &m, &p).is_err());
        let max = DvfsAssignment::max_frequency(&m, &p).unwrap();
        assert_eq!(max.as_slice(), &[2, 2]);
        assert_eq!(max.level(0), Some(2));
        assert_eq!(max.level(9), None);
    }

    #[test]
    fn uniform_config_is_consistent() {
        let p = platform();
        let net = tiny_cnn(ModelPreset::cifar10());
        let config = MappingConfig::uniform(&net, &p).unwrap();
        assert_eq!(config.num_stages(), 2);
        assert_eq!(config.partition.num_stages(), 2);
        assert_eq!(config.indicator.num_stages(), 2);
        assert_eq!(config.dvfs.num_stages(), 2);
    }

    #[test]
    fn mismatched_stage_counts_are_rejected() {
        let p = platform();
        let net = tiny_cnn(ModelPreset::cifar10());
        let partition = PartitionMatrix::uniform(&net, 3).unwrap();
        let indicator = IndicatorMatrix::full(&net, 2);
        let mapping = Mapping::identity(&p);
        let dvfs = DvfsAssignment::max_frequency(&mapping, &p).unwrap();
        assert!(MappingConfig::new(partition, indicator, mapping, dvfs).is_err());
    }

    #[test]
    fn search_space_matches_paper_formula() {
        // Paper §V-A: 8 ratios, M = 3, |ϑ| = 50 → 8³ · 3! · 50 ≈ 1.5×10⁵.
        // For the AGX Xavier preset the DVFS combination count differs, but
        // the formula structure is the same.
        let xavier = Platform::agx_xavier();
        let size = MappingConfig::search_space_per_layer(&xavier, 8);
        let expected = 8f64.powi(3) * 6.0 * xavier.dvfs_combinations() as f64;
        assert!((size - expected).abs() < 1e-6);
        assert!(size > 1e5);
    }
}
