//! End-to-end evaluation of candidate configurations.
//!
//! The [`Evaluator`] holds everything that is fixed during a search — the
//! network, the platform, the accuracy model, the synthetic validation set,
//! the estimator and the constraints — and turns one [`MappingConfig`] into
//! an [`EvaluationResult`]: the average/worst-case latency and energy under
//! dynamic early-exit inference, the accuracy figures, the memory footprint,
//! the scalar objective of eq. 16 and the constraint violations.

use crate::baselines::default_accuracy_profile;
use crate::config::MappingConfig;
use crate::error::CoreError;
use crate::estimator::Estimator;
use crate::objective::{objective_value, Constraints, ObjectiveWeights};
use crate::perf::{
    evaluate_performance, evaluate_performance_grid, evaluate_performance_quant,
    evaluate_performance_tabled, PerformanceBreakdown, StagePerformance,
};
use crate::tables::{CostTable, QuantizedCostTable};
use mnc_dynamic::{
    AccuracyModel, AccuracyProfile, DynamicAccuracyReport, DynamicNetwork, QuantSliceGrid,
    SliceGrid, SyntheticValidationSet,
};
use mnc_mpsoc::Platform;
use mnc_nn::{ImportanceModel, LayerId, Network};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Everything the evaluator derives from one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// Expected per-input latency under early-exit inference (ms), averaged
    /// over the validation set's exit distribution.
    pub average_latency_ms: f64,
    /// Expected per-input energy under early-exit inference (mJ).
    pub average_energy_mj: f64,
    /// Worst-case latency with every stage instantiated (eq. 13).
    pub worst_case_latency_ms: f64,
    /// Energy with every stage instantiated (eq. 14).
    pub full_energy_mj: f64,
    /// Accuracy of the dynamic network under the early-exit policy.
    pub accuracy: f64,
    /// Accuracy of the final stage (the paper's `Acc_SM`).
    pub final_stage_accuracy: f64,
    /// Baseline accuracy minus dynamic accuracy (positive = loss).
    pub accuracy_drop: f64,
    /// Feature-map reuse ratio of the configuration.
    pub fmap_reuse: f64,
    /// Bytes of forwarded features resident in shared memory.
    pub stored_feature_bytes: f64,
    /// Scalar objective of eq. 16 (lower is better).
    pub objective: f64,
    /// Whether all constraints are satisfied.
    pub feasible: bool,
    /// Human-readable list of violated constraints (empty when feasible).
    pub violations: Vec<String>,
    /// Per-stage latency/energy breakdown.
    pub stage_performance: Vec<StagePerformance>,
    /// Number of validation samples exiting at each stage.
    pub exit_counts: Vec<usize>,
    /// Mean number of stages executed per input.
    pub average_stages_executed: f64,
}

impl EvaluationResult {
    /// Fraction of validation samples that exit before the last stage.
    pub fn early_exit_fraction(&self) -> f64 {
        let total: usize = self.exit_counts.iter().sum();
        if total == 0 || self.exit_counts.len() <= 1 {
            return 0.0;
        }
        let early: usize = self
            .exit_counts
            .iter()
            .take(self.exit_counts.len() - 1)
            .sum();
        early as f64 / total as f64
    }
}

/// Builder for [`Evaluator`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct EvaluatorBuilder {
    network: Network,
    platform: Platform,
    accuracy_profile: Option<AccuracyProfile>,
    importance: Option<ImportanceModel>,
    importance_seed: u64,
    importance_concentration: f64,
    validation_set: Option<SyntheticValidationSet>,
    validation_samples: usize,
    validation_seed: u64,
    constraints: Constraints,
    estimator: Estimator,
    weights: ObjectiveWeights,
}

impl EvaluatorBuilder {
    /// Starts a builder for the given network and platform.
    pub fn new(network: Network, platform: Platform) -> Self {
        EvaluatorBuilder {
            network,
            platform,
            accuracy_profile: None,
            importance: None,
            importance_seed: 2023,
            importance_concentration: 1.5,
            validation_set: None,
            validation_samples: 10_000,
            validation_seed: 7,
            constraints: Constraints::default(),
            estimator: Estimator::Analytic,
            weights: ObjectiveWeights::default(),
        }
    }

    /// Overrides the accuracy profile (defaults to a per-architecture
    /// preset chosen from the network name).
    #[must_use]
    pub fn accuracy_profile(mut self, profile: AccuracyProfile) -> Self {
        self.accuracy_profile = Some(profile);
        self
    }

    /// Uses an explicit channel-importance model (defaults to a synthetic
    /// one seeded from [`EvaluatorBuilder::importance_seed`]).
    #[must_use]
    pub fn importance(mut self, importance: ImportanceModel) -> Self {
        self.importance = Some(importance);
        self
    }

    /// Seed of the synthetic channel-importance model.
    #[must_use]
    pub fn importance_seed(mut self, seed: u64) -> Self {
        self.importance_seed = seed;
        self
    }

    /// Concentration of the synthetic channel-importance model.
    #[must_use]
    pub fn importance_concentration(mut self, concentration: f64) -> Self {
        self.importance_concentration = concentration;
        self
    }

    /// Uses an explicit synthetic validation set.
    #[must_use]
    pub fn validation_set(mut self, set: SyntheticValidationSet) -> Self {
        self.validation_set = Some(set);
        self
    }

    /// Number of synthetic validation samples to generate when no explicit
    /// set is supplied.
    #[must_use]
    pub fn validation_samples(mut self, samples: usize) -> Self {
        self.validation_samples = samples;
        self
    }

    /// Seed of the generated validation set.
    #[must_use]
    pub fn validation_seed(mut self, seed: u64) -> Self {
        self.validation_seed = seed;
        self
    }

    /// Sets the deployment constraints.
    #[must_use]
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the latency/energy estimator.
    #[must_use]
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the objective weights.
    #[must_use]
    pub fn objective_weights(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Builds the evaluator.
    ///
    /// # Errors
    ///
    /// Returns an error when the constraints or the accuracy profile are
    /// invalid.
    pub fn build(self) -> Result<Evaluator, CoreError> {
        self.constraints.validate()?;
        let profile = self
            .accuracy_profile
            .unwrap_or_else(|| default_accuracy_profile(self.network.name()));
        let importance = self.importance.unwrap_or_else(|| {
            ImportanceModel::synthetic(
                &self.network,
                self.importance_seed,
                self.importance_concentration,
            )
        });
        let accuracy = AccuracyModel::new(profile, importance)?;
        let validation = self.validation_set.unwrap_or_else(|| {
            SyntheticValidationSet::generate(self.validation_samples, self.validation_seed, 1.0)
        });
        // The analytic estimator's per-slice arithmetic is invariant during
        // a search, so resolve it into a cost table once. The surrogate's
        // output depends on the continuous slice features and keeps the
        // dynamic dispatch path.
        let cost_table = match &self.estimator {
            Estimator::Analytic => Some(CostTable::build(&self.network, &self.platform)),
            Estimator::Surrogate(_) => None,
        };
        let quantized = match &cost_table {
            Some(table) => Some(QuantizedCostTable::build(
                &self.network,
                &self.platform,
                table,
            )?),
            None => None,
        };
        let partitionable = self.network.partitionable_layers();
        let output_bytes = (0..self.network.num_layers())
            .map(|layer| {
                Ok(self
                    .network
                    .output_shape_of(mnc_nn::LayerId(layer))?
                    .num_bytes() as f64)
            })
            .collect::<Result<Vec<f64>, CoreError>>()?;
        let evaluator = Evaluator {
            network: self.network,
            platform: self.platform,
            accuracy,
            validation,
            constraints: self.constraints,
            estimator: self.estimator,
            weights: self.weights,
            cost_table,
            quantized,
            partitionable,
            output_bytes,
            fingerprint: OnceLock::new(),
        };
        // Pay the serialization pass once at build time; every later
        // `fingerprint()` call is a load.
        evaluator.fingerprint();
        Ok(evaluator)
    }
}

/// Evaluates mapping configurations for one (network, platform) pair.
#[derive(Debug, Clone)]
pub struct Evaluator {
    network: Network,
    platform: Platform,
    accuracy: AccuracyModel,
    validation: SyntheticValidationSet,
    constraints: Constraints,
    estimator: Estimator,
    weights: ObjectiveWeights,
    /// Precomputed per-(unit, level, class) coefficients; `None` for the
    /// surrogate estimator (see [`CostTable`]).
    cost_table: Option<CostTable>,
    /// The fully resolved estimate grid over exact 1/8 width fractions
    /// (see [`QuantizedCostTable`]); `None` for the surrogate estimator.
    quantized: Option<QuantizedCostTable>,
    /// The network's partitionable layers, resolved once at build time so
    /// the fused evaluation path stops re-deriving them per evaluation.
    partitionable: Vec<LayerId>,
    /// Each layer's output-feature byte count, resolved once at build time
    /// (shapes are fixed); feeds the fused paths' transfer derivation.
    output_bytes: Vec<f64>,
    /// Memoised [`Evaluator::fingerprint`], set at build time.
    fingerprint: OnceLock<u64>,
}

impl Evaluator {
    /// The network under evaluation.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The accuracy model in use.
    pub fn accuracy_model(&self) -> &AccuracyModel {
        &self.accuracy
    }

    /// The estimator in use.
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// Baseline accuracy of the unmodified network.
    pub fn baseline_accuracy(&self) -> f64 {
        self.accuracy.profile().baseline_accuracy
    }

    /// A stable fingerprint of everything this evaluator holds fixed
    /// during a search: network, platform, accuracy model, validation set,
    /// constraints, estimator and objective weights.
    ///
    /// Two evaluators with equal fingerprints produce bit-identical
    /// [`EvaluationResult`]s for the same configuration, so the fingerprint
    /// is a sound cache-key component (see `mnc_runtime`'s evaluation
    /// cache). The serialization pass behind it — network, platform and
    /// the full validation set — runs once, at build time; every later
    /// call returns the memoised value.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut hasher = crate::fingerprint::StableHasher::new();
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.network));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.platform));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.accuracy));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.validation));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(
                &self.constraints,
            ));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.estimator));
            hasher.write_u64(crate::fingerprint::fingerprint_serialized(&self.weights));
            hasher.finish()
        })
    }

    /// The precomputed cost table, when the estimator supports one.
    pub fn cost_table(&self) -> Option<&CostTable> {
        self.cost_table.as_ref()
    }

    /// Evaluates a configuration end to end.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is inconsistent with the
    /// network/platform or the hardware model rejects it.
    pub fn evaluate(&self, config: &MappingConfig) -> Result<EvaluationResult, CoreError> {
        let dynamic =
            DynamicNetwork::transform(&self.network, &config.partition, &config.indicator)?;
        self.evaluate_transformed(&dynamic, config)
    }

    /// Evaluates a configuration whose dynamic transformation has already
    /// been computed (lets callers amortise the transform).
    ///
    /// `dynamic` must have been transformed from **this evaluator's
    /// network** — the precomputed cost table classifies layers from it,
    /// so a dynamic network derived from a different model would be
    /// silently mispriced (debug builds assert this; release builds, where
    /// this sits on the hot path, trust the caller the same way the
    /// stage-count check trusts `config`).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration does not match the dynamic
    /// network or the hardware model rejects it.
    pub fn evaluate_transformed(
        &self,
        dynamic: &DynamicNetwork,
        config: &MappingConfig,
    ) -> Result<EvaluationResult, CoreError> {
        debug_assert!(
            dynamic.network() == &self.network,
            "dynamic network was transformed from a different model than this evaluator's"
        );
        let perf = match &self.cost_table {
            Some(table) => evaluate_performance_tabled(dynamic, config, &self.platform, table)?,
            None => evaluate_performance(dynamic, config, &self.platform, &self.estimator)?,
        };
        let report = self.accuracy.evaluate(dynamic, &self.validation);
        Ok(self.assemble(dynamic, perf, report))
    }

    /// Evaluates a configuration through the fused fast path: the
    /// transform recursion runs into a flat [`SliceGrid`] (three
    /// allocations) instead of materialising a [`DynamicNetwork`] (a clone
    /// of the network, both matrices and ~200 slice/transfer allocations),
    /// the performance model derives transfers on the fly and the accuracy
    /// model reads the configuration directly. Results are **bit-identical**
    /// to [`Evaluator::evaluate`] — every intermediate float is computed by
    /// the same expression from the same inputs in the same order
    /// (property-tested in `tests/fast_path.rs`).
    ///
    /// The surrogate estimator keeps its dynamic dispatch and falls back
    /// to [`Evaluator::evaluate`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Evaluator::evaluate`].
    pub fn evaluate_fused(&self, config: &MappingConfig) -> Result<EvaluationResult, CoreError> {
        self.evaluate_fused_inner(config, None)
    }

    /// [`Evaluator::evaluate_fused`] with caller-supplied per-layer row
    /// keys (one per partitionable layer, e.g.
    /// `mnc_optim::Genome::partition_row_keys`) that memoise the accuracy
    /// model's slice-mass rows across evaluations — partition rows repeat
    /// constantly across a population while full structures never do.
    /// Keys are verified before use, so results stay bit-identical to
    /// [`Evaluator::evaluate`] for any key input.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Evaluator::evaluate`].
    pub fn evaluate_fused_keyed(
        &self,
        config: &MappingConfig,
        row_keys: &[u64],
    ) -> Result<EvaluationResult, CoreError> {
        self.evaluate_fused_inner(config, Some(row_keys))
    }

    fn evaluate_fused_inner(
        &self,
        config: &MappingConfig,
        row_keys: Option<&[u64]>,
    ) -> Result<EvaluationResult, CoreError> {
        let Some(table) = &self.cost_table else {
            return self.evaluate(config);
        };
        // Preferred: the quantised path (pure table reads per slice).
        // Configurations off the 1/8 grid — not produced by the genome
        // encoding — fall back to the general grid path.
        let (perf, stored_feature_bytes) = match &self.quantized {
            Some(quant) => {
                match QuantSliceGrid::compute(&self.network, &config.partition, &config.indicator)?
                {
                    Some(grid) => {
                        let perf = evaluate_performance_quant(
                            &grid,
                            config,
                            &self.platform,
                            quant,
                            &self.output_bytes,
                        )?;
                        (perf, grid.stored_feature_bytes())
                    }
                    None => self.fused_grid_performance(config, table)?,
                }
            }
            None => self.fused_grid_performance(config, table)?,
        };
        let report = match row_keys {
            Some(keys) => self.accuracy.evaluate_parts_keyed(
                &config.partition,
                &config.indicator,
                &self.partitionable,
                &self.validation,
                keys,
            ),
            None => self.accuracy.evaluate_parts(
                &config.partition,
                &config.indicator,
                &self.partitionable,
                &self.validation,
            ),
        };
        Ok(self.assemble_parts(
            config.indicator.reuse_ratio(),
            stored_feature_bytes,
            perf,
            report,
        ))
    }

    /// The un-quantised fused performance path: flat [`SliceGrid`] plus
    /// the coefficient table.
    fn fused_grid_performance(
        &self,
        config: &MappingConfig,
        table: &CostTable,
    ) -> Result<(PerformanceBreakdown, f64), CoreError> {
        let grid = SliceGrid::compute(&self.network, &config.partition, &config.indicator)?;
        let perf =
            evaluate_performance_grid(&grid, config, &self.platform, table, &self.output_bytes)?;
        Ok((perf, grid.stored_feature_bytes()))
    }

    /// Evaluates a configuration through the pre-fast-path pipeline: fresh
    /// dynamic transformation, per-slice estimator dispatch (no cost
    /// table) and the naive per-sample accuracy loop.
    ///
    /// Retained as the oracle for the fast-path-equivalence property
    /// tests and the baseline for the `evaluator_fastpath` benchmark; the
    /// results are bit-identical to [`Evaluator::evaluate`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Evaluator::evaluate`].
    pub fn evaluate_reference(
        &self,
        config: &MappingConfig,
    ) -> Result<EvaluationResult, CoreError> {
        let dynamic =
            DynamicNetwork::transform(&self.network, &config.partition, &config.indicator)?;
        let perf = evaluate_performance(&dynamic, config, &self.platform, &self.estimator)?;
        let report = self.accuracy.evaluate_reference(&dynamic, &self.validation);
        Ok(self.assemble(&dynamic, perf, report))
    }

    fn assemble(
        &self,
        dynamic: &DynamicNetwork,
        perf: PerformanceBreakdown,
        report: DynamicAccuracyReport,
    ) -> EvaluationResult {
        self.assemble_parts(
            dynamic.fmap_reuse_ratio(),
            dynamic.stored_feature_bytes(),
            perf,
            report,
        )
    }

    /// [`Evaluator::assemble`] from the two scalars it actually reads off
    /// the dynamic network, so the fused path can call it without one.
    /// Takes the performance breakdown by value: its stage vector moves
    /// into the result instead of being cloned.
    fn assemble_parts(
        &self,
        fmap_reuse: f64,
        stored_feature_bytes: f64,
        perf: PerformanceBreakdown,
        report: DynamicAccuracyReport,
    ) -> EvaluationResult {
        let num_stages = perf.num_stages();
        let total_samples: usize = report.exit_counts.iter().sum();

        // Cumulative views in one pass: `latency_with_stages(i + 1)` is a
        // running max and `energy_with_stages(i + 1)` a running sum, both
        // left-folded exactly like the `PerformanceBreakdown` methods, so
        // the former per-stage recomputation (O(stages²)) collapses to
        // O(stages) with bit-identical values.
        let mut cumulative_latency = Vec::with_capacity(num_stages);
        let mut cumulative_energy = Vec::with_capacity(num_stages);
        let mut worst_case_latency_ms = 0.0f64;
        let mut full_energy_mj = 0.0f64;
        for stage in &perf.stages {
            worst_case_latency_ms = worst_case_latency_ms.max(stage.latency_ms);
            full_energy_mj += stage.energy_mj;
            cumulative_latency.push(worst_case_latency_ms);
            cumulative_energy.push(full_energy_mj);
        }

        // Expected latency/energy over the exit distribution: an input that
        // exits at stage i pays max latency of stages 0..=i and the energy
        // of stages 0..=i (eq. 13/14 restricted to instantiated stages).
        let mut average_latency_ms = 0.0;
        let mut average_energy_mj = 0.0;
        if total_samples > 0 {
            for (stage, count) in report.exit_counts.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let weight = *count as f64 / total_samples as f64;
                average_latency_ms += weight * cumulative_latency[stage];
                average_energy_mj += weight * cumulative_energy[stage];
            }
        } else {
            average_latency_ms = worst_case_latency_ms;
            average_energy_mj = full_energy_mj;
        }

        let stage_latencies: Vec<f64> = perf.stages.iter().map(|s| s.latency_ms).collect();
        let objective = objective_value(
            self.baseline_accuracy(),
            &report,
            &stage_latencies,
            &cumulative_energy,
            &self.weights,
        );

        let accuracy_drop = (self.baseline_accuracy() - report.overall_accuracy).max(0.0);
        let violations = self.constraints.violations(
            worst_case_latency_ms,
            full_energy_mj,
            fmap_reuse,
            accuracy_drop,
            stored_feature_bytes,
            self.platform.shared_memory().capacity_bytes(),
        );

        EvaluationResult {
            average_latency_ms,
            average_energy_mj,
            worst_case_latency_ms,
            full_energy_mj,
            accuracy: report.overall_accuracy,
            final_stage_accuracy: report.final_stage_accuracy,
            accuracy_drop,
            fmap_reuse,
            stored_feature_bytes,
            objective,
            feasible: violations.is_empty(),
            violations,
            stage_performance: perf.stages,
            exit_counts: report.exit_counts,
            average_stages_executed: report.average_stages_executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_dynamic::{IndicatorMatrix, PartitionMatrix};
    use mnc_nn::models::{visformer_tiny, ModelPreset};

    fn evaluator() -> Evaluator {
        EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(2000)
        .build()
        .unwrap()
    }

    fn skewed_config(evaluator: &Evaluator) -> MappingConfig {
        let net = evaluator.network();
        let platform = evaluator.platform();
        let partition = PartitionMatrix::from_stage_fractions(net, &[0.625, 0.375]).unwrap();
        let indicator = IndicatorMatrix::full(net, 2);
        let mapping = crate::config::Mapping::identity(platform);
        let dvfs = crate::config::DvfsAssignment::max_frequency(&mapping, platform).unwrap();
        MappingConfig::new(partition, indicator, mapping, dvfs).unwrap()
    }

    #[test]
    fn evaluation_produces_consistent_metrics() {
        let evaluator = evaluator();
        let config = skewed_config(&evaluator);
        let result = evaluator.evaluate(&config).unwrap();
        assert!(result.average_latency_ms > 0.0);
        assert!(result.average_latency_ms <= result.worst_case_latency_ms + 1e-9);
        assert!(result.average_energy_mj > 0.0);
        assert!(result.average_energy_mj <= result.full_energy_mj + 1e-9);
        assert!(result.accuracy > 0.5 && result.accuracy <= 1.0);
        assert!(result.objective.is_finite());
        assert_eq!(result.exit_counts.iter().sum::<usize>(), 2000);
        assert_eq!(result.stage_performance.len(), 2);
        assert!(result.early_exit_fraction() > 0.0);
        assert!(result.feasible, "violations: {:?}", result.violations);
    }

    #[test]
    fn early_exits_reduce_average_energy_below_full_energy() {
        let evaluator = evaluator();
        let config = skewed_config(&evaluator);
        let result = evaluator.evaluate(&config).unwrap();
        // A large share of samples exits at stage 0, so the expected energy
        // must be clearly below running everything every time.
        assert!(result.average_energy_mj < result.full_energy_mj * 0.95);
        assert!(result.average_stages_executed < 2.0);
    }

    #[test]
    fn uniform_default_configuration_is_feasible() {
        let evaluator = evaluator();
        let config = MappingConfig::uniform(evaluator.network(), evaluator.platform()).unwrap();
        let result = evaluator.evaluate(&config).unwrap();
        assert!(result.feasible, "violations: {:?}", result.violations);
    }

    #[test]
    fn fmap_constraint_marks_full_reuse_infeasible() {
        let network = visformer_tiny(ModelPreset::cifar100());
        let evaluator = EvaluatorBuilder::new(network, Platform::dual_test())
            .validation_samples(1000)
            .constraints(Constraints::with_fmap_reuse_limit(0.5))
            .build()
            .unwrap();
        let config = skewed_config(&evaluator);
        let result = evaluator.evaluate(&config).unwrap();
        assert!(!result.feasible);
        assert!(result.violations.iter().any(|v| v.contains("reuse")));
    }

    #[test]
    fn invalid_constraints_fail_at_build_time() {
        let network = visformer_tiny(ModelPreset::cifar100());
        let result = EvaluatorBuilder::new(network, Platform::dual_test())
            .constraints(Constraints {
                latency_target_ms: Some(-1.0),
                ..Constraints::default()
            })
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn evaluate_transformed_matches_evaluate() {
        let evaluator = evaluator();
        let config = skewed_config(&evaluator);
        let dynamic =
            DynamicNetwork::transform(evaluator.network(), &config.partition, &config.indicator)
                .unwrap();
        let a = evaluator.evaluate(&config).unwrap();
        let b = evaluator.evaluate_transformed(&dynamic, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fast_path_matches_reference_pipeline_bitwise() {
        let evaluator = evaluator();
        let config = skewed_config(&evaluator);
        let fast = evaluator.evaluate(&config).unwrap();
        let reference = evaluator.evaluate_reference(&config).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.objective.to_bits(), reference.objective.to_bits());
        assert_eq!(
            fast.average_latency_ms.to_bits(),
            reference.average_latency_ms.to_bits()
        );
        assert_eq!(
            fast.average_energy_mj.to_bits(),
            reference.average_energy_mj.to_bits()
        );
        assert_eq!(
            fast.worst_case_latency_ms.to_bits(),
            reference.worst_case_latency_ms.to_bits()
        );
        assert_eq!(
            fast.full_energy_mj.to_bits(),
            reference.full_energy_mj.to_bits()
        );
    }

    #[test]
    fn analytic_evaluator_builds_a_cost_table() {
        let evaluator = evaluator();
        let table = evaluator.cost_table().expect("analytic builds a table");
        assert_eq!(table.num_units(), evaluator.platform().num_compute_units());
        assert_eq!(table.num_layers(), evaluator.network().num_layers());
    }

    #[test]
    fn fingerprint_is_memoised_and_stable() {
        let evaluator = evaluator();
        let first = evaluator.fingerprint();
        assert_eq!(first, evaluator.fingerprint());
        // A clone carries the memoised value and agrees with it.
        assert_eq!(first, evaluator.clone().fingerprint());
        // A freshly built identical evaluator recomputes the same value.
        let rebuilt = EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(2000)
        .build()
        .unwrap();
        assert_eq!(first, rebuilt.fingerprint());
    }

    #[test]
    fn builder_accessors_round_trip() {
        let evaluator = evaluator();
        assert_eq!(evaluator.network().name(), "visformer_tiny");
        assert_eq!(evaluator.platform().name(), "dual_test");
        assert_eq!(evaluator.estimator().tag(), "analytic");
        assert!(evaluator.baseline_accuracy() > 0.8);
        assert!(evaluator.constraints().validate().is_ok());
        assert!(evaluator.accuracy_model().profile().baseline_accuracy > 0.8);
    }
}
