//! Constraints and the optimisation objective (paper eq. 15–16).

use crate::error::CoreError;
use mnc_dynamic::DynamicAccuracyReport;
use serde::{Deserialize, Serialize};

/// Deployment constraints of eq. 15.
///
/// Unset options impose no bound. The shared-memory constraint is always
/// active: the intermediate features that must stay resident may use at
/// most the non-reserved part of the platform's shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Target worst-case latency `T_TRG` in milliseconds.
    pub latency_target_ms: Option<f64>,
    /// Target per-inference energy `E_TRG` in millijoules.
    pub energy_target_mj: Option<f64>,
    /// Upper bound on the feature-map reuse ratio (the paper's 75% / 50%
    /// constrained search strategies).
    pub max_fmap_reuse: Option<f64>,
    /// Maximum tolerated accuracy drop with respect to the baseline (the
    /// paper highlights configurations within 0.5%).
    pub max_accuracy_drop: Option<f64>,
    /// Fraction of the shared memory reserved for weights, activations and
    /// the OS; only the remainder may hold forwarded feature maps.
    pub memory_reserved_fraction: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            latency_target_ms: None,
            energy_target_mj: None,
            max_fmap_reuse: None,
            max_accuracy_drop: None,
            memory_reserved_fraction: 0.5,
        }
    }
}

impl Constraints {
    /// An unconstrained search (only the shared-memory bound applies).
    pub fn none() -> Self {
        Constraints::default()
    }

    /// The paper's feature-map-reuse-constrained strategies: reuse at most
    /// `ratio` of the forwardable feature maps.
    pub fn with_fmap_reuse_limit(ratio: f64) -> Self {
        Constraints {
            max_fmap_reuse: Some(ratio),
            ..Constraints::default()
        }
    }

    /// Validates the constraint values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstraint`] for non-positive targets or
    /// out-of-range fractions.
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive = |value: Option<f64>, what: &str| match value {
            Some(v) if !(v.is_finite() && v > 0.0) => Err(CoreError::InvalidConstraint {
                reason: format!("{what} must be positive, got {v}"),
            }),
            _ => Ok(()),
        };
        positive(self.latency_target_ms, "latency target")?;
        positive(self.energy_target_mj, "energy target")?;
        if let Some(r) = self.max_fmap_reuse {
            if !(0.0..=1.0).contains(&r) {
                return Err(CoreError::InvalidConstraint {
                    reason: format!("feature-map reuse limit must be in [0, 1], got {r}"),
                });
            }
        }
        if let Some(d) = self.max_accuracy_drop {
            if !(0.0..=1.0).contains(&d) {
                return Err(CoreError::InvalidConstraint {
                    reason: format!("accuracy-drop limit must be in [0, 1], got {d}"),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.memory_reserved_fraction) {
            return Err(CoreError::InvalidConstraint {
                reason: format!(
                    "memory reserved fraction must be in [0, 1], got {}",
                    self.memory_reserved_fraction
                ),
            });
        }
        Ok(())
    }

    /// Lists every violated constraint for the given measurements; an empty
    /// vector means the configuration is feasible.
    #[allow(clippy::too_many_arguments)]
    pub fn violations(
        &self,
        worst_case_latency_ms: f64,
        full_energy_mj: f64,
        fmap_reuse: f64,
        accuracy_drop: f64,
        stored_feature_bytes: f64,
        shared_memory_bytes: u64,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(target) = self.latency_target_ms {
            if worst_case_latency_ms > target {
                violations.push(format!(
                    "latency {worst_case_latency_ms:.2} ms exceeds target {target:.2} ms"
                ));
            }
        }
        if let Some(target) = self.energy_target_mj {
            if full_energy_mj > target {
                violations.push(format!(
                    "energy {full_energy_mj:.2} mJ exceeds target {target:.2} mJ"
                ));
            }
        }
        if let Some(limit) = self.max_fmap_reuse {
            if fmap_reuse > limit + 1e-9 {
                violations.push(format!(
                    "feature-map reuse {:.1}% exceeds limit {:.1}%",
                    fmap_reuse * 100.0,
                    limit * 100.0
                ));
            }
        }
        if let Some(limit) = self.max_accuracy_drop {
            if accuracy_drop > limit + 1e-9 {
                violations.push(format!(
                    "accuracy drop {:.2}% exceeds limit {:.2}%",
                    accuracy_drop * 100.0,
                    limit * 100.0
                ));
            }
        }
        let budget = shared_memory_bytes as f64 * (1.0 - self.memory_reserved_fraction);
        if stored_feature_bytes > budget {
            violations.push(format!(
                "stored features {:.1} MiB exceed the shared-memory budget {:.1} MiB",
                stored_feature_bytes / (1024.0 * 1024.0),
                budget / (1024.0 * 1024.0)
            ));
        }
        violations
    }
}

/// Exponents applied to the three factors of the objective. All ones
/// reproduce eq. 16 exactly; other values let a search emphasise latency or
/// energy (how the paper's "Ours-L" / "Ours-E" selections behave).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Exponent of the accuracy-ratio factor.
    pub accuracy: f64,
    /// Exponent of the latency factor.
    pub latency: f64,
    /// Exponent of the energy factor.
    pub energy: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        ObjectiveWeights {
            accuracy: 1.0,
            latency: 1.0,
            energy: 1.0,
        }
    }
}

impl ObjectiveWeights {
    /// Weights biased towards minimising latency.
    pub fn latency_oriented() -> Self {
        ObjectiveWeights {
            accuracy: 1.0,
            latency: 2.0,
            energy: 0.5,
        }
    }

    /// Weights biased towards minimising energy.
    pub fn energy_oriented() -> Self {
        ObjectiveWeights {
            accuracy: 1.0,
            latency: 0.5,
            energy: 2.0,
        }
    }
}

/// Evaluates the scalar objective of eq. 16:
///
/// ```text
/// P = (Acc_base / Acc_SM) × (Σ_i T_Si · N_i) × (Σ_i E_{S1:i} · N_i)
/// ```
///
/// `stage_latency_ms[i]` is `T_{S_i}`, `cumulative_energy_mj[i]` is the
/// energy of executing stages `1..=i` and `report.newly_correct[i]` is
/// `N_i`. Lower is better.
pub fn objective_value(
    baseline_accuracy: f64,
    report: &DynamicAccuracyReport,
    stage_latency_ms: &[f64],
    cumulative_energy_mj: &[f64],
    weights: &ObjectiveWeights,
) -> f64 {
    let accuracy_factor = if report.final_stage_accuracy > 0.0 {
        baseline_accuracy / report.final_stage_accuracy
    } else {
        f64::INFINITY
    };
    let latency_factor: f64 = report
        .newly_correct
        .iter()
        .zip(stage_latency_ms)
        .map(|(n, t)| *n as f64 * t)
        .sum();
    let energy_factor: f64 = report
        .newly_correct
        .iter()
        .zip(cumulative_energy_mj)
        .map(|(n, e)| *n as f64 * e)
        .sum();
    accuracy_factor.powf(weights.accuracy)
        * latency_factor.max(1e-12).powf(weights.latency)
        * energy_factor.max(1e-12).powf(weights.energy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(newly_correct: Vec<usize>, final_acc: f64) -> DynamicAccuracyReport {
        DynamicAccuracyReport {
            stage_accuracy: vec![0.8; newly_correct.len()],
            stage_capacity: vec![0.8; newly_correct.len()],
            exit_counts: newly_correct.clone(),
            newly_correct,
            overall_accuracy: final_acc,
            final_stage_accuracy: final_acc,
            average_stages_executed: 1.2,
            num_samples: 100,
        }
    }

    #[test]
    fn default_constraints_accept_reasonable_configurations() {
        let c = Constraints::default();
        assert!(c.validate().is_ok());
        let violations = c.violations(30.0, 100.0, 1.0, 0.0, 1e6, 1 << 30);
        assert!(violations.is_empty());
    }

    #[test]
    fn each_constraint_reports_its_violation() {
        let c = Constraints {
            latency_target_ms: Some(10.0),
            energy_target_mj: Some(50.0),
            max_fmap_reuse: Some(0.5),
            max_accuracy_drop: Some(0.005),
            memory_reserved_fraction: 0.5,
        };
        let violations = c.violations(20.0, 100.0, 0.8, 0.02, 2e9, 1 << 30);
        assert_eq!(violations.len(), 5);
        assert!(violations[0].contains("latency"));
        assert!(violations[1].contains("energy"));
        assert!(violations[2].contains("reuse"));
        assert!(violations[3].contains("accuracy"));
        assert!(violations[4].contains("memory"));
    }

    #[test]
    fn invalid_constraints_are_rejected() {
        for bad in [
            Constraints {
                latency_target_ms: Some(0.0),
                ..Constraints::default()
            },
            Constraints {
                energy_target_mj: Some(-5.0),
                ..Constraints::default()
            },
            Constraints {
                max_fmap_reuse: Some(1.5),
                ..Constraints::default()
            },
            Constraints {
                max_accuracy_drop: Some(-0.1),
                ..Constraints::default()
            },
            Constraints {
                memory_reserved_fraction: 2.0,
                ..Constraints::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
        assert!(Constraints::with_fmap_reuse_limit(0.75).validate().is_ok());
    }

    #[test]
    fn objective_prefers_faster_and_frugal_configurations() {
        let weights = ObjectiveWeights::default();
        let r = report(vec![80, 15, 5], 0.88);
        let slow = objective_value(
            0.88,
            &r,
            &[20.0, 25.0, 30.0],
            &[50.0, 90.0, 120.0],
            &weights,
        );
        let fast = objective_value(0.88, &r, &[10.0, 15.0, 20.0], &[40.0, 60.0, 80.0], &weights);
        assert!(fast < slow);
    }

    #[test]
    fn objective_penalises_accuracy_loss() {
        let weights = ObjectiveWeights::default();
        let good = report(vec![80, 15, 5], 0.88);
        let bad = report(vec![80, 15, 5], 0.80);
        let latencies = [10.0, 15.0, 20.0];
        let energies = [40.0, 60.0, 80.0];
        assert!(
            objective_value(0.88, &bad, &latencies, &energies, &weights)
                > objective_value(0.88, &good, &latencies, &energies, &weights)
        );
    }

    #[test]
    fn zero_final_accuracy_gives_infinite_objective() {
        let weights = ObjectiveWeights::default();
        let r = report(vec![10, 0], 0.0);
        let v = objective_value(0.9, &r, &[1.0, 2.0], &[1.0, 2.0], &weights);
        assert!(v.is_infinite());
    }

    #[test]
    fn oriented_weights_change_the_ranking() {
        // Configuration A: low latency, high energy. B: the reverse.
        let r = report(vec![90, 10], 0.88);
        let a_lat = [5.0, 8.0];
        let a_energy = [100.0, 160.0];
        let b_lat = [12.0, 18.0];
        let b_energy = [40.0, 65.0];
        let latency_pref = ObjectiveWeights::latency_oriented();
        let energy_pref = ObjectiveWeights::energy_oriented();
        let a_under_latency = objective_value(0.88, &r, &a_lat, &a_energy, &latency_pref);
        let b_under_latency = objective_value(0.88, &r, &b_lat, &b_energy, &latency_pref);
        let a_under_energy = objective_value(0.88, &r, &a_lat, &a_energy, &energy_pref);
        let b_under_energy = objective_value(0.88, &r, &b_lat, &b_energy, &energy_pref);
        assert!(a_under_latency < b_under_latency);
        assert!(b_under_energy < a_under_energy);
    }
}
