//! Event-driven execution simulator.
//!
//! [`ExecutionTrace::simulate`] replays a configuration slice by slice —
//! respecting per-stage program order, inter-stage feature dependencies and
//! transfer delays — and records when every slice starts and finishes on
//! its compute unit. It serves two purposes:
//!
//! * validation: the stage completion times it produces must equal the
//!   closed-form recursion of [`crate::perf`] (covered by tests and the
//!   workspace integration tests),
//! * inspection: the trace shows stalls (paper Fig. 3) and can be printed
//!   by examples / harness binaries as a Gantt-style timeline.

use crate::config::MappingConfig;
use crate::error::CoreError;
use crate::estimator::Estimator;
use crate::tables::CostTable;
use mnc_dynamic::{DynamicNetwork, LayerSlice};
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::LayerId;
use serde::{Deserialize, Serialize};

/// One executed slice in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceEvent {
    /// Stage the slice belongs to.
    pub stage: usize,
    /// Layer the slice computes.
    pub layer: LayerId,
    /// Compute unit it ran on.
    pub cu: CuId,
    /// Time the slice became ready (all dependencies satisfied).
    pub ready_ms: f64,
    /// Time the slice started executing.
    pub start_ms: f64,
    /// Time the slice finished.
    pub end_ms: f64,
    /// Time spent waiting on dependencies or transfers before starting,
    /// measured from the completion of the previous slice on the same
    /// stage.
    pub stall_ms: f64,
}

impl SliceEvent {
    /// Execution duration of the slice.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// A complete simulated execution of one inference (all stages
/// instantiated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    events: Vec<SliceEvent>,
    stage_finish_ms: Vec<f64>,
}

impl ExecutionTrace {
    /// Simulates the concurrent execution of `dynamic` under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration does not match the dynamic
    /// network or references invalid hardware resources.
    pub fn simulate(
        dynamic: &DynamicNetwork,
        config: &MappingConfig,
        platform: &Platform,
        estimator: &Estimator,
    ) -> Result<Self, CoreError> {
        let network = dynamic.network();
        Self::simulate_with(dynamic, config, platform, |cu, dvfs_level, slice| {
            let layer = network.layer(slice.layer)?;
            estimator.estimate(platform, cu, layer, &slice.cost, dvfs_level)
        })
    }

    /// [`ExecutionTrace::simulate`] driven by a precomputed [`CostTable`]
    /// instead of per-slice estimator dispatch; bit-identical for the
    /// analytic estimator (the table reproduces its estimates exactly).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ExecutionTrace::simulate`].
    pub fn simulate_tabled(
        dynamic: &DynamicNetwork,
        config: &MappingConfig,
        platform: &Platform,
        table: &CostTable,
    ) -> Result<Self, CoreError> {
        Self::simulate_with(dynamic, config, platform, |cu, dvfs_level, slice| {
            table.estimate(cu, dvfs_level, slice.layer, &slice.cost)
        })
    }

    /// The shared slice-by-slice replay, generic over how a slice's
    /// `(latency, energy)` is produced.
    fn simulate_with<F>(
        dynamic: &DynamicNetwork,
        config: &MappingConfig,
        platform: &Platform,
        mut estimate: F,
    ) -> Result<Self, CoreError>
    where
        F: FnMut(CuId, usize, &LayerSlice) -> Result<(f64, f64), CoreError>,
    {
        let num_stages = dynamic.num_stages();
        if config.num_stages() != num_stages {
            return Err(CoreError::InvalidMapping {
                reason: format!(
                    "configuration has {} stages but the dynamic network has {num_stages}",
                    config.num_stages()
                ),
            });
        }
        let network = dynamic.network();
        let interconnect = platform.interconnect();
        let num_layers = network.num_layers();

        let mut events = Vec::with_capacity(num_stages * num_layers);
        // finish[stage][layer] — completion time of each slice.
        let mut finish = vec![vec![0.0f64; num_layers]; num_stages];
        // Next free time of the compute unit each stage runs on. Each stage
        // owns its unit exclusively, so this equals the previous slice's
        // completion time.
        let mut cu_free = vec![0.0f64; num_stages];

        for stage_index in 0..num_stages {
            let cu = config
                .mapping
                .compute_unit(stage_index)
                .expect("stage count checked above");
            let dvfs_level = config
                .dvfs
                .level(stage_index)
                .expect("stage count checked above");
            let stage = dynamic
                .stage(stage_index)
                .expect("stage count checked above");

            for (layer_index, slice) in stage.slices.iter().enumerate() {
                let (tau, _) = estimate(cu, dvfs_level, slice)?;

                // The slice is ready once forwarded features have arrived.
                let mut ready_ms = 0.0f64;
                for transfer in &slice.incoming {
                    let producer_finish = if layer_index == 0 {
                        0.0
                    } else {
                        finish[transfer.from_stage][layer_index - 1]
                    };
                    ready_ms =
                        ready_ms.max(producer_finish + interconnect.transfer_ms(transfer.bytes));
                }
                let start_ms = ready_ms.max(cu_free[stage_index]);
                let end_ms = start_ms + tau;
                let stall_ms = start_ms - cu_free[stage_index];
                finish[stage_index][layer_index] = end_ms;
                cu_free[stage_index] = end_ms;
                events.push(SliceEvent {
                    stage: stage_index,
                    layer: slice.layer,
                    cu,
                    ready_ms,
                    start_ms,
                    end_ms,
                    stall_ms,
                });
            }
        }

        let stage_finish_ms = finish
            .iter()
            .map(|row| row.last().copied().unwrap_or(0.0))
            .collect();
        Ok(ExecutionTrace {
            events,
            stage_finish_ms,
        })
    }

    /// All slice events, in simulation order.
    pub fn events(&self) -> &[SliceEvent] {
        &self.events
    }

    /// Completion time of each stage.
    pub fn stage_finish_ms(&self) -> &[f64] {
        &self.stage_finish_ms
    }

    /// Completion time of the whole inference (all stages).
    pub fn makespan_ms(&self) -> f64 {
        self.stage_finish_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Total time stages spent stalled on inter-stage dependencies.
    pub fn total_stall_ms(&self) -> f64 {
        self.events.iter().map(|e| e.stall_ms).sum()
    }

    /// A compact multi-line textual Gantt rendering of the trace (one line
    /// per slice), useful in examples and debugging sessions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&format!(
                "stage {} {} on {}: start {:8.3} ms, end {:8.3} ms ({:6.3} ms, stall {:5.3} ms)\n",
                event.stage,
                event.layer,
                event.cu,
                event.start_ms,
                event.end_ms,
                event.duration_ms(),
                event.stall_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DvfsAssignment, Mapping};
    use crate::perf::evaluate_performance;
    use mnc_dynamic::{IndicatorMatrix, PartitionMatrix};
    use mnc_nn::models::{visformer_tiny, ModelPreset};

    fn setup() -> (DynamicNetwork, MappingConfig, Platform) {
        let net = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let partition = PartitionMatrix::from_stage_fractions(&net, &[0.625, 0.375]).unwrap();
        let indicator = IndicatorMatrix::full(&net, 2);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        let mapping = Mapping::identity(&platform);
        let dvfs = DvfsAssignment::max_frequency(&mapping, &platform).unwrap();
        let config = MappingConfig::new(partition, indicator, mapping, dvfs).unwrap();
        (dynamic, config, platform)
    }

    #[test]
    fn simulation_matches_analytic_recursion() {
        let (dynamic, config, platform) = setup();
        let estimator = Estimator::Analytic;
        let trace = ExecutionTrace::simulate(&dynamic, &config, &platform, &estimator).unwrap();
        let perf = evaluate_performance(&dynamic, &config, &platform, &estimator).unwrap();
        for (stage_perf, sim_finish) in perf.stages.iter().zip(trace.stage_finish_ms()) {
            assert!(
                (stage_perf.latency_ms - sim_finish).abs() < 1e-9,
                "analytic {} vs simulated {}",
                stage_perf.latency_ms,
                sim_finish
            );
        }
        assert!((trace.makespan_ms() - perf.makespan_ms()).abs() < 1e-9);
    }

    #[test]
    fn tabled_simulation_matches_estimator_path() {
        let (dynamic, config, platform) = setup();
        let table = CostTable::build(dynamic.network(), &platform);
        let reference =
            ExecutionTrace::simulate(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        let tabled = ExecutionTrace::simulate_tabled(&dynamic, &config, &platform, &table).unwrap();
        assert_eq!(reference, tabled);
        for (a, b) in reference.events().iter().zip(tabled.events()) {
            assert_eq!(a.start_ms.to_bits(), b.start_ms.to_bits());
            assert_eq!(a.end_ms.to_bits(), b.end_ms.to_bits());
        }
    }

    #[test]
    fn trace_covers_every_slice_in_order() {
        let (dynamic, config, platform) = setup();
        let trace =
            ExecutionTrace::simulate(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        let expected = dynamic.num_stages() * dynamic.network().num_layers();
        assert_eq!(trace.events().len(), expected);
        // Within a stage, slices never overlap and appear in layer order.
        for stage in 0..dynamic.num_stages() {
            let stage_events: Vec<&SliceEvent> =
                trace.events().iter().filter(|e| e.stage == stage).collect();
            for pair in stage_events.windows(2) {
                assert!(pair[1].start_ms >= pair[0].end_ms - 1e-12);
                assert!(pair[1].layer.0 > pair[0].layer.0);
            }
        }
    }

    #[test]
    fn first_stage_never_stalls() {
        let (dynamic, config, platform) = setup();
        let trace =
            ExecutionTrace::simulate(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        for event in trace.events().iter().filter(|e| e.stage == 0) {
            assert!(event.stall_ms.abs() < 1e-12);
        }
    }

    #[test]
    fn consumer_on_a_faster_unit_stalls_on_its_producer() {
        // Map the first (producing) stage onto the slow unit and the second
        // (consuming) stage onto the fast one: the consumer must wait for
        // forwarded features, which shows up as stall time (paper Fig. 3).
        let net = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let partition = PartitionMatrix::from_stage_fractions(&net, &[0.625, 0.375]).unwrap();
        let indicator = IndicatorMatrix::full(&net, 2);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        let mapping =
            Mapping::new(vec![mnc_mpsoc::CuId(1), mnc_mpsoc::CuId(0)], &platform).unwrap();
        let dvfs = DvfsAssignment::max_frequency(&mapping, &platform).unwrap();
        let config = MappingConfig::new(partition, indicator, mapping, dvfs).unwrap();
        let trace =
            ExecutionTrace::simulate(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        assert!(trace.total_stall_ms() > 0.0);
        assert!(trace
            .events()
            .iter()
            .any(|e| e.stage == 1 && e.stall_ms > 0.0));
    }

    #[test]
    fn render_mentions_every_stage() {
        let (dynamic, config, platform) = setup();
        let trace =
            ExecutionTrace::simulate(&dynamic, &config, &platform, &Estimator::Analytic).unwrap();
        let text = trace.render();
        assert!(text.contains("stage 0"));
        assert!(text.contains("stage 1"));
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let (_, config, platform) = setup();
        let net = visformer_tiny(ModelPreset::cifar100());
        let partition = PartitionMatrix::uniform(&net, 1).unwrap();
        let indicator = IndicatorMatrix::full(&net, 1);
        let single = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        assert!(
            ExecutionTrace::simulate(&single, &config, &platform, &Estimator::Analytic).is_err()
        );
    }
}
