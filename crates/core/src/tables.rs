//! Precomputed cost tables for the evaluation fast path.
//!
//! [`Estimator::estimate`](crate::Estimator::estimate) pays, per layer
//! slice, a compute-unit lookup, a DVFS-table lookup, a workload
//! classification and the full roofline/power arithmetic. All of that is
//! invariant during a search — the platform, the DVFS tables and the layer
//! kinds never change — so [`CostTable::build`] resolves it once per
//! evaluator:
//!
//! * per (compute unit, DVFS level, workload class): the
//!   [`ExecutionCoefficients`] the unit would derive on every call,
//! * per layer: its [`WorkloadClass`].
//!
//! [`CostTable::estimate`] is then two bounds checks, two array reads, two
//! divisions, a max and a multiply. Because `ComputeUnit::execute` is
//! itself defined in terms of `execution_coefficients(..).execute(..)`,
//! the table reproduces the analytic estimator **bit for bit** (covered by
//! the `fast_path` property tests).
//!
//! The table only models [`Estimator::Analytic`]. The surrogate estimator
//! runs a gradient-boosted predictor whose output depends on the
//! continuous slice features, so it cannot be folded into per-level
//! coefficients; surrogate evaluators keep the dynamic dispatch path.

use crate::error::CoreError;
use mnc_mpsoc::{CuId, ExecutionCoefficients, Platform, WorkloadClass};
use mnc_nn::{LayerId, Network, SliceCost};

/// Per-unit slice of the table: one coefficient row per DVFS level, one
/// entry per workload class (indexed by [`WorkloadClass::index`]).
#[derive(Debug, Clone)]
struct UnitTable {
    levels: Vec<[ExecutionCoefficients; WorkloadClass::ALL.len()]>,
}

/// Precomputed per-(compute unit, DVFS level, workload class) execution
/// coefficients plus per-layer workload classes for one
/// (network, platform) pair.
#[derive(Debug, Clone)]
pub struct CostTable {
    units: Vec<UnitTable>,
    layer_classes: Vec<WorkloadClass>,
}

impl CostTable {
    /// Resolves every (compute unit, DVFS level, workload class)
    /// combination of `platform` and classifies every layer of `network`.
    pub fn build(network: &Network, platform: &Platform) -> Self {
        let units = platform
            .compute_units()
            .iter()
            .map(|unit| {
                let levels = (0..unit.dvfs().num_levels())
                    .map(|level| {
                        let point = unit
                            .dvfs()
                            .point(level)
                            .expect("level enumerated from the table");
                        WorkloadClass::ALL.map(|class| unit.execution_coefficients(class, point))
                    })
                    .collect();
                UnitTable { levels }
            })
            .collect();
        let layer_classes = network
            .layers()
            .iter()
            .map(WorkloadClass::from_layer)
            .collect();
        CostTable {
            units,
            layer_classes,
        }
    }

    /// Estimates `(latency_ms, energy_mj)` of running `cost` (a slice of
    /// layer `layer`) on compute unit `cu` at DVFS level `dvfs_level` —
    /// the table-driven equivalent of the analytic
    /// [`Estimator::estimate`](crate::Estimator::estimate).
    ///
    /// # Errors
    ///
    /// Returns an error for compute units, DVFS levels or layers outside
    /// the table (the cases where the estimator path would fail too).
    pub fn estimate(
        &self,
        cu: CuId,
        dvfs_level: usize,
        layer: LayerId,
        cost: &SliceCost,
    ) -> Result<(f64, f64), CoreError> {
        let unit = self
            .units
            .get(cu.0)
            .ok_or_else(|| CoreError::InvalidMapping {
                reason: format!("unknown compute unit {cu} (table has {})", self.units.len()),
            })?;
        let coefficients = unit
            .levels
            .get(dvfs_level)
            .ok_or_else(|| CoreError::InvalidDvfs {
                reason: format!(
                    "dvfs level {dvfs_level} out of range for {cu} ({} levels)",
                    unit.levels.len()
                ),
            })?;
        let class = self
            .layer_classes
            .get(layer.0)
            .ok_or_else(|| CoreError::InvalidMapping {
                reason: format!(
                    "layer {layer} outside the cost table ({} layers)",
                    self.layer_classes.len()
                ),
            })?;
        Ok(coefficients[class.index()].latency_energy(cost))
    }

    /// Number of compute units covered.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of layers classified.
    pub fn num_layers(&self) -> usize {
        self.layer_classes.len()
    }
}

/// Number of representable width fractions on the search's 1/8 grid
/// (`k/8` for `k in 0..=8`).
pub const QUANT_STEPS: usize = 9;

/// The fully quantised estimate table (the ROADMAP's "fold the estimator
/// into a quantised table" refinement): `(latency_ms, energy_mj)` for
/// every (compute unit, DVFS level, layer, out-fraction, in-fraction)
/// combination on the search's exact 1/8-width grid.
///
/// Every genome the search evaluates decodes into slice fractions that
/// are exact multiples of 1/8 (8 width slots per layer; visibility sums
/// of such multiples stay exact in IEEE arithmetic), so the per-slice
/// workload arithmetic (`Layer::slice_cost`) and the coefficient
/// evaluation ([`CostTable::estimate`]) are pure functions of five small
/// integers. Resolving them once at evaluator-build time turns the hot
/// loop's ~72 slice-cost computations + estimator calls per candidate
/// into direct array reads. Entries are produced by the *same* calls the
/// un-quantised path makes, so a lookup is bit-identical to recomputing.
#[derive(Debug, Clone)]
pub struct QuantizedCostTable {
    /// `(latency_ms, energy_mj)`, indexed
    /// `((level_offsets[cu] + level) * num_layers + layer) * 81 + out_k * 9 + in_k`.
    entries: Vec<(f64, f64)>,
    /// Cumulative DVFS-level offset per compute unit.
    level_offsets: Vec<usize>,
    num_layers: usize,
}

impl QuantizedCostTable {
    /// Resolves the full grid for one (network, platform) pair through
    /// `table`.
    ///
    /// # Errors
    ///
    /// Returns an error when a slice cost cannot be computed (mismatched
    /// shapes), which does not happen for a validated network.
    pub fn build(
        network: &Network,
        platform: &Platform,
        table: &CostTable,
    ) -> Result<Self, CoreError> {
        let num_layers = network.num_layers();
        let cells = QUANT_STEPS * QUANT_STEPS;

        // Slice costs per (layer, out_k, in_k): computed once, shared by
        // every (unit, level) block.
        let mut slice_costs = Vec::with_capacity(num_layers * cells);
        for (layer_id, layer) in network.iter() {
            let input_shape = network.input_shape_of(layer_id)?;
            for out_k in 0..QUANT_STEPS {
                for in_k in 0..QUANT_STEPS {
                    slice_costs.push(layer.slice_cost(
                        &input_shape,
                        out_k as f64 / 8.0,
                        in_k as f64 / 8.0,
                    )?);
                }
            }
        }

        let mut level_offsets = Vec::with_capacity(platform.num_compute_units());
        let mut total_levels = 0usize;
        for unit in platform.compute_units() {
            level_offsets.push(total_levels);
            total_levels += unit.dvfs().num_levels();
        }

        let mut entries = Vec::with_capacity(total_levels * num_layers * cells);
        for (cu_index, unit) in platform.compute_units().iter().enumerate() {
            for level in 0..unit.dvfs().num_levels() {
                for layer in 0..num_layers {
                    for cost in &slice_costs[layer * cells..(layer + 1) * cells] {
                        entries.push(table.estimate(
                            CuId(cu_index),
                            level,
                            LayerId(layer),
                            cost,
                        )?);
                    }
                }
            }
        }
        Ok(QuantizedCostTable {
            entries,
            level_offsets,
            num_layers,
        })
    }

    /// The resolved `(latency_ms, energy_mj)` of the slice
    /// `(layer, out_k/8, in_k/8)` on `cu` at `dvfs_level` — bit-identical
    /// to [`CostTable::estimate`] on the slice cost of those fractions.
    #[inline]
    pub fn lookup(
        &self,
        cu: CuId,
        dvfs_level: usize,
        layer: usize,
        out_k: usize,
        in_k: usize,
    ) -> (f64, f64) {
        debug_assert!(out_k < QUANT_STEPS && in_k < QUANT_STEPS);
        // `dvfs_level` is validated against the unit's table when the
        // `DvfsAssignment` is constructed; assert it stays inside the
        // unit's block rather than silently reading a neighbour's.
        debug_assert!(
            self.level_offsets
                .get(cu.0 + 1)
                .is_none_or(|next| self.level_offsets[cu.0] + dvfs_level < *next),
            "dvfs level {dvfs_level} outside {cu}'s quantised block"
        );
        let level_index = self.level_offsets[cu.0] + dvfs_level;
        let index = (level_index * self.num_layers + layer) * (QUANT_STEPS * QUANT_STEPS)
            + out_k * QUANT_STEPS
            + in_k;
        self.entries[index]
    }

    /// Number of resolved entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (an empty network).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimator;
    use mnc_nn::models::{tiny_cnn, visformer_tiny, ModelPreset};

    #[test]
    fn table_matches_analytic_estimator_bit_for_bit() {
        for network in [
            tiny_cnn(ModelPreset::cifar10()),
            visformer_tiny(ModelPreset::cifar100()),
        ] {
            for platform in [Platform::dual_test(), Platform::agx_xavier()] {
                let table = CostTable::build(&network, &platform);
                assert_eq!(table.num_units(), platform.num_compute_units());
                assert_eq!(table.num_layers(), network.num_layers());
                for (id, layer) in network.iter() {
                    let cost = layer
                        .full_cost(&network.input_shape_of(id).unwrap())
                        .unwrap();
                    for cu in 0..platform.num_compute_units() {
                        let unit = platform.compute_unit(CuId(cu)).unwrap();
                        for level in 0..unit.dvfs().num_levels() {
                            let (lat_t, e_t) = table.estimate(CuId(cu), level, id, &cost).unwrap();
                            let (lat_a, e_a) = Estimator::Analytic
                                .estimate(&platform, CuId(cu), layer, &cost, level)
                                .unwrap();
                            assert_eq!(lat_t.to_bits(), lat_a.to_bits());
                            assert_eq!(e_t.to_bits(), e_a.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let network = tiny_cnn(ModelPreset::cifar10());
        let platform = Platform::dual_test();
        let table = CostTable::build(&network, &platform);
        let cost = SliceCost::zero();
        assert!(table.estimate(CuId(99), 0, LayerId(0), &cost).is_err());
        assert!(table.estimate(CuId(0), 99, LayerId(0), &cost).is_err());
        assert!(table
            .estimate(CuId(0), 0, LayerId(network.num_layers()), &cost)
            .is_err());
        assert!(table.estimate(CuId(0), 0, LayerId(0), &cost).is_ok());
    }
}
