//! Precomputed cost tables for the evaluation fast path.
//!
//! [`Estimator::estimate`](crate::Estimator::estimate) pays, per layer
//! slice, a compute-unit lookup, a DVFS-table lookup, a workload
//! classification and the full roofline/power arithmetic. All of that is
//! invariant during a search — the platform, the DVFS tables and the layer
//! kinds never change — so [`CostTable::build`] resolves it once per
//! evaluator:
//!
//! * per (compute unit, DVFS level, workload class): the
//!   [`ExecutionCoefficients`] the unit would derive on every call,
//! * per layer: its [`WorkloadClass`].
//!
//! [`CostTable::estimate`] is then two bounds checks, two array reads, two
//! divisions, a max and a multiply. Because `ComputeUnit::execute` is
//! itself defined in terms of `execution_coefficients(..).execute(..)`,
//! the table reproduces the analytic estimator **bit for bit** (covered by
//! the `fast_path` property tests).
//!
//! The table only models [`Estimator::Analytic`]. The surrogate estimator
//! runs a gradient-boosted predictor whose output depends on the
//! continuous slice features, so it cannot be folded into per-level
//! coefficients; surrogate evaluators keep the dynamic dispatch path.

use crate::error::CoreError;
use mnc_mpsoc::{CuId, ExecutionCoefficients, Platform, WorkloadClass};
use mnc_nn::{LayerId, Network, SliceCost};

/// Per-unit slice of the table: one coefficient row per DVFS level, one
/// entry per workload class (indexed by [`WorkloadClass::index`]).
#[derive(Debug, Clone)]
struct UnitTable {
    levels: Vec<[ExecutionCoefficients; WorkloadClass::ALL.len()]>,
}

/// Precomputed per-(compute unit, DVFS level, workload class) execution
/// coefficients plus per-layer workload classes for one
/// (network, platform) pair.
#[derive(Debug, Clone)]
pub struct CostTable {
    units: Vec<UnitTable>,
    layer_classes: Vec<WorkloadClass>,
}

impl CostTable {
    /// Resolves every (compute unit, DVFS level, workload class)
    /// combination of `platform` and classifies every layer of `network`.
    pub fn build(network: &Network, platform: &Platform) -> Self {
        let units = platform
            .compute_units()
            .iter()
            .map(|unit| {
                let levels = (0..unit.dvfs().num_levels())
                    .map(|level| {
                        let point = unit
                            .dvfs()
                            .point(level)
                            .expect("level enumerated from the table");
                        WorkloadClass::ALL.map(|class| unit.execution_coefficients(class, point))
                    })
                    .collect();
                UnitTable { levels }
            })
            .collect();
        let layer_classes = network
            .layers()
            .iter()
            .map(WorkloadClass::from_layer)
            .collect();
        CostTable {
            units,
            layer_classes,
        }
    }

    /// Estimates `(latency_ms, energy_mj)` of running `cost` (a slice of
    /// layer `layer`) on compute unit `cu` at DVFS level `dvfs_level` —
    /// the table-driven equivalent of the analytic
    /// [`Estimator::estimate`](crate::Estimator::estimate).
    ///
    /// # Errors
    ///
    /// Returns an error for compute units, DVFS levels or layers outside
    /// the table (the cases where the estimator path would fail too).
    pub fn estimate(
        &self,
        cu: CuId,
        dvfs_level: usize,
        layer: LayerId,
        cost: &SliceCost,
    ) -> Result<(f64, f64), CoreError> {
        let unit = self
            .units
            .get(cu.0)
            .ok_or_else(|| CoreError::InvalidMapping {
                reason: format!("unknown compute unit {cu} (table has {})", self.units.len()),
            })?;
        let coefficients = unit
            .levels
            .get(dvfs_level)
            .ok_or_else(|| CoreError::InvalidDvfs {
                reason: format!(
                    "dvfs level {dvfs_level} out of range for {cu} ({} levels)",
                    unit.levels.len()
                ),
            })?;
        let class = self
            .layer_classes
            .get(layer.0)
            .ok_or_else(|| CoreError::InvalidMapping {
                reason: format!(
                    "layer {layer} outside the cost table ({} layers)",
                    self.layer_classes.len()
                ),
            })?;
        Ok(coefficients[class.index()].latency_energy(cost))
    }

    /// Number of compute units covered.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of layers classified.
    pub fn num_layers(&self) -> usize {
        self.layer_classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimator;
    use mnc_nn::models::{tiny_cnn, visformer_tiny, ModelPreset};

    #[test]
    fn table_matches_analytic_estimator_bit_for_bit() {
        for network in [
            tiny_cnn(ModelPreset::cifar10()),
            visformer_tiny(ModelPreset::cifar100()),
        ] {
            for platform in [Platform::dual_test(), Platform::agx_xavier()] {
                let table = CostTable::build(&network, &platform);
                assert_eq!(table.num_units(), platform.num_compute_units());
                assert_eq!(table.num_layers(), network.num_layers());
                for (id, layer) in network.iter() {
                    let cost = layer
                        .full_cost(&network.input_shape_of(id).unwrap())
                        .unwrap();
                    for cu in 0..platform.num_compute_units() {
                        let unit = platform.compute_unit(CuId(cu)).unwrap();
                        for level in 0..unit.dvfs().num_levels() {
                            let (lat_t, e_t) = table.estimate(CuId(cu), level, id, &cost).unwrap();
                            let (lat_a, e_a) = Estimator::Analytic
                                .estimate(&platform, CuId(cu), layer, &cost, level)
                                .unwrap();
                            assert_eq!(lat_t.to_bits(), lat_a.to_bits());
                            assert_eq!(e_t.to_bits(), e_a.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let network = tiny_cnn(ModelPreset::cifar10());
        let platform = Platform::dual_test();
        let table = CostTable::build(&network, &platform);
        let cost = SliceCost::zero();
        assert!(table.estimate(CuId(99), 0, LayerId(0), &cost).is_err());
        assert!(table.estimate(CuId(0), 99, LayerId(0), &cost).is_err());
        assert!(table
            .estimate(CuId(0), 0, LayerId(network.num_layers()), &cost)
            .is_err());
        assert!(table.estimate(CuId(0), 0, LayerId(0), &cost).is_ok());
    }
}
