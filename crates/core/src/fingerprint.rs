//! Cheap, stable structural fingerprints for caching.
//!
//! The runtime's evaluation cache (see `mnc_runtime`) keys cached
//! [`crate::EvaluationResult`]s by *what was evaluated*: the candidate
//! configuration and everything the evaluator holds fixed (network,
//! platform, accuracy model, validation set, constraints, estimator and
//! objective weights). This module provides the hashing machinery:
//!
//! * [`StableHasher`] — a 64-bit FNV-1a hasher whose output is a pure
//!   function of the written bytes, independent of platform, process or
//!   `std::collections` hash seeds (unlike `DefaultHasher`),
//! * [`fingerprint_serialized`] — hashes any [`serde::Serialize`] type
//!   through its value-model representation, giving every model/hardware
//!   type in the workspace a fingerprint for free,
//! * [`Fingerprint`] — a trait for hand-rolled, allocation-free
//!   implementations. [`MappingConfig`] implements it for callers keying
//!   caches on decoded configurations; note the runtime's search cache
//!   keys on the cheaper `Genome::fingerprint` (defined in `mnc_optim`
//!   with the same [`StableHasher`]) since genomes exist before decoding.

use crate::config::MappingConfig;
use serde::{Serialize, Value};

/// A 64-bit FNV-1a hasher with stable, platform-independent output.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher in the canonical initial state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.state ^= u64::from(*byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Feeds a `usize` (as `u64`, so 32/64-bit builds agree).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Feeds an `f64` by its bit pattern (exact, no rounding).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, value: bool) {
        self.write_bytes(&[u8::from(value)]);
    }

    /// Feeds a string (length-prefixed so concatenations can't collide).
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write_bytes(value.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Types with a cheap structural fingerprint.
pub trait Fingerprint {
    /// Feeds the structural content into `hasher`.
    fn fingerprint_into(&self, hasher: &mut StableHasher);

    /// The standalone 64-bit fingerprint.
    fn fingerprint(&self) -> u64 {
        let mut hasher = StableHasher::new();
        self.fingerprint_into(&mut hasher);
        hasher.finish()
    }
}

/// Hashes any serializable value through its value-model representation.
///
/// This is the slow-but-universal path: one allocation tree per call. Use
/// it for things fingerprinted once per request (platforms, constraints,
/// whole evaluators), not per cache lookup.
pub fn fingerprint_serialized<T: Serialize + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    hash_value(&value.to_value(), &mut hasher);
    hasher.finish()
}

fn hash_value(value: &Value, hasher: &mut StableHasher) {
    match value {
        Value::Null => hasher.write_bytes(b"n"),
        Value::Bool(b) => {
            hasher.write_bytes(b"b");
            hasher.write_bool(*b);
        }
        Value::Int(n) => {
            hasher.write_bytes(b"i");
            hasher.write_u64(*n as u64);
        }
        Value::UInt(n) => {
            // Same tag as Int: a u64 that fits i64 serializes as Int, and
            // the two must fingerprint identically for equal values.
            hasher.write_bytes(b"i");
            hasher.write_u64(*n);
        }
        Value::Float(f) => {
            hasher.write_bytes(b"f");
            hasher.write_f64(*f);
        }
        Value::Str(s) => {
            hasher.write_bytes(b"s");
            hasher.write_str(s);
        }
        Value::Seq(items) => {
            hasher.write_bytes(b"[");
            hasher.write_usize(items.len());
            for item in items {
                hash_value(item, hasher);
            }
        }
        Value::Map(entries) => {
            hasher.write_bytes(b"{");
            hasher.write_usize(entries.len());
            for (key, item) in entries {
                hasher.write_str(key);
                hash_value(item, hasher);
            }
        }
    }
}

impl Fingerprint for MappingConfig {
    fn fingerprint_into(&self, hasher: &mut StableHasher) {
        // Partition fractions: exact f64 bit patterns, row-major.
        hasher.write_usize(self.partition.num_layers());
        hasher.write_usize(self.partition.num_stages());
        for layer in 0..self.partition.num_layers() {
            for stage in 0..self.partition.num_stages() {
                hasher.write_f64(self.partition.fraction(mnc_nn::LayerId(layer), stage));
            }
        }
        // Indicator bits.
        hasher.write_usize(self.indicator.num_layers());
        hasher.write_usize(self.indicator.num_stages());
        for layer in 0..self.indicator.num_layers() {
            for stage in 0..self.indicator.num_stages() {
                hasher.write_bool(self.indicator.is_forwarded(mnc_nn::LayerId(layer), stage));
            }
        }
        // Stage → compute-unit permutation.
        hasher.write_usize(self.mapping.num_stages());
        for cu in self.mapping.as_slice() {
            hasher.write_usize(cu.0);
        }
        // DVFS levels.
        hasher.write_usize(self.dvfs.num_stages());
        for level in self.dvfs.as_slice() {
            hasher.write_usize(*level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingConfig;
    use mnc_mpsoc::Platform;
    use mnc_nn::models::{visformer_tiny, ModelPreset};

    #[test]
    fn hashing_is_stable_and_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("abc");
        a.write_f64(1.5);
        let mut b = StableHasher::new();
        b.write_str("abc");
        b.write_f64(1.5);
        assert_eq!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_str("abd");
        c.write_f64(1.5);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn config_fingerprint_distinguishes_configurations() {
        let network = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let uniform = MappingConfig::uniform(&network, &platform).unwrap();
        assert_eq!(uniform.fingerprint(), uniform.fingerprint());

        let other = MappingConfig::uniform(&network, &Platform::agx_xavier()).unwrap();
        assert_ne!(uniform.fingerprint(), other.fingerprint());
    }

    #[test]
    fn serialized_fingerprint_matches_equal_values() {
        let p = Platform::dual_test();
        assert_eq!(
            fingerprint_serialized(&p),
            fingerprint_serialized(&p.clone())
        );
        assert_ne!(
            fingerprint_serialized(&p),
            fingerprint_serialized(&Platform::agx_xavier())
        );
    }
}
