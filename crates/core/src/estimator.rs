//! Sources of per-layer latency/energy estimates.
//!
//! The evaluator can obtain the `τ^j_i` / `e^j_i` numbers of eq. 8–12 in
//! two ways:
//!
//! * [`Estimator::Analytic`] — straight from the roofline/power model of
//!   [`mnc_mpsoc`] (exact with respect to the simulated hardware),
//! * [`Estimator::Surrogate`] — from the trained gradient-boosted
//!   [`PerformancePredictor`], reproducing the paper's XGBoost workflow and
//!   its approximation error.

use crate::error::CoreError;
use mnc_mpsoc::{CuId, Platform, WorkloadClass};
use mnc_nn::{Layer, SliceCost};
use mnc_predictor::{PerformancePredictor, QueryFeatures};
use serde::{Deserialize, Serialize};

/// How per-layer hardware measurements are produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum Estimator {
    /// Use the analytic hardware model directly.
    #[default]
    Analytic,
    /// Use a trained surrogate predictor (the paper's approach).
    Surrogate(PerformancePredictor),
}

impl Estimator {
    /// Estimates `(latency_ms, energy_mj)` of running `cost` (a slice of
    /// `layer`) on compute unit `cu` of `platform` at DVFS level
    /// `dvfs_level`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown compute units or DVFS levels.
    pub fn estimate(
        &self,
        platform: &Platform,
        cu: CuId,
        layer: &Layer,
        cost: &SliceCost,
        dvfs_level: usize,
    ) -> Result<(f64, f64), CoreError> {
        let unit = platform.compute_unit(cu)?;
        let point = unit.dvfs().point(dvfs_level)?;
        let class = WorkloadClass::from_layer(layer);
        match self {
            Estimator::Analytic => {
                let sample = unit.execute(cost, class, point);
                Ok((sample.latency_ms, sample.energy_mj))
            }
            Estimator::Surrogate(predictor) => {
                let query = QueryFeatures::new(*cost, class, unit, point);
                Ok(predictor.predict(&query))
            }
        }
    }

    /// Short tag identifying the estimator in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Estimator::Analytic => "analytic",
            Estimator::Surrogate(_) => "surrogate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, ModelPreset};
    use mnc_predictor::{DatasetConfig, GbtConfig};

    #[test]
    fn analytic_estimator_matches_platform_execution() {
        let platform = Platform::dual_test();
        let net = tiny_cnn(ModelPreset::cifar10());
        let (id, layer) = net.iter().next().unwrap();
        let cost = layer.full_cost(&net.input_shape_of(id).unwrap()).unwrap();
        let estimator = Estimator::Analytic;
        let (lat, energy) = estimator
            .estimate(&platform, CuId(0), layer, &cost, 2)
            .unwrap();
        let sample = platform.execute_slice(CuId(0), layer, &cost, 2).unwrap();
        assert!((lat - sample.latency_ms).abs() < 1e-12);
        assert!((energy - sample.energy_mj).abs() < 1e-12);
        assert_eq!(estimator.tag(), "analytic");
    }

    #[test]
    fn surrogate_estimator_is_close_to_analytic() {
        let platform = Platform::dual_test();
        let predictor = PerformancePredictor::train(
            &platform,
            &DatasetConfig {
                samples: 500,
                seed: 23,
                noise_std: 0.02,
                train_fraction: 0.85,
            },
            &GbtConfig::fast(),
        )
        .unwrap();
        let estimator = Estimator::Surrogate(predictor);
        assert_eq!(estimator.tag(), "surrogate");

        let net = tiny_cnn(ModelPreset::cifar10());
        let (id, layer) = net.iter().next().unwrap();
        let cost = layer.full_cost(&net.input_shape_of(id).unwrap()).unwrap();
        let (lat_s, energy_s) = estimator
            .estimate(&platform, CuId(0), layer, &cost, 2)
            .unwrap();
        let (lat_a, energy_a) = Estimator::Analytic
            .estimate(&platform, CuId(0), layer, &cost, 2)
            .unwrap();
        assert!(lat_s > 0.0 && energy_s > 0.0);
        // The surrogate should stay within a factor of ~2 of the analytic
        // model for a workload inside its training distribution.
        assert!(lat_s / lat_a < 2.5 && lat_a / lat_s < 2.5);
        assert!(energy_s / energy_a < 2.5 && energy_a / energy_s < 2.5);
    }

    #[test]
    fn invalid_targets_are_reported() {
        let platform = Platform::dual_test();
        let net = tiny_cnn(ModelPreset::cifar10());
        let (id, layer) = net.iter().next().unwrap();
        let cost = layer.full_cost(&net.input_shape_of(id).unwrap()).unwrap();
        assert!(Estimator::Analytic
            .estimate(&platform, CuId(7), layer, &cost, 0)
            .is_err());
        assert!(Estimator::Analytic
            .estimate(&platform, CuId(0), layer, &cost, 99)
            .is_err());
    }

    #[test]
    fn default_is_analytic() {
        assert_eq!(Estimator::default(), Estimator::Analytic);
    }
}
