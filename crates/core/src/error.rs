//! Error type for the core crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or evaluating mapping configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The mapping vector is invalid (wrong length, repeated compute unit,
    /// unknown compute unit).
    InvalidMapping {
        /// Description of the problem.
        reason: String,
    },
    /// The DVFS assignment is invalid (wrong length or out-of-range level).
    InvalidDvfs {
        /// Description of the problem.
        reason: String,
    },
    /// A constraint or objective parameter is invalid.
    InvalidConstraint {
        /// Description of the problem.
        reason: String,
    },
    /// An error from the network representation.
    Network(mnc_nn::NetworkError),
    /// An error from the dynamic transformation.
    Dynamic(mnc_dynamic::DynamicError),
    /// An error from the hardware model.
    Mpsoc(mnc_mpsoc::MpsocError),
    /// An error from the surrogate predictor.
    Predictor(mnc_predictor::PredictorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidMapping { reason } => write!(f, "invalid mapping: {reason}"),
            CoreError::InvalidDvfs { reason } => write!(f, "invalid dvfs assignment: {reason}"),
            CoreError::InvalidConstraint { reason } => {
                write!(f, "invalid constraint: {reason}")
            }
            CoreError::Network(e) => write!(f, "network error: {e}"),
            CoreError::Dynamic(e) => write!(f, "dynamic transformation error: {e}"),
            CoreError::Mpsoc(e) => write!(f, "hardware model error: {e}"),
            CoreError::Predictor(e) => write!(f, "surrogate predictor error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Network(e) => Some(e),
            CoreError::Dynamic(e) => Some(e),
            CoreError::Mpsoc(e) => Some(e),
            CoreError::Predictor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mnc_nn::NetworkError> for CoreError {
    fn from(e: mnc_nn::NetworkError) -> Self {
        CoreError::Network(e)
    }
}

impl From<mnc_dynamic::DynamicError> for CoreError {
    fn from(e: mnc_dynamic::DynamicError) -> Self {
        CoreError::Dynamic(e)
    }
}

impl From<mnc_mpsoc::MpsocError> for CoreError {
    fn from(e: mnc_mpsoc::MpsocError) -> Self {
        CoreError::Mpsoc(e)
    }
}

impl From<mnc_predictor::PredictorError> for CoreError {
    fn from(e: mnc_predictor::PredictorError) -> Self {
        CoreError::Predictor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_work_for_wrapped_errors() {
        let e: CoreError = mnc_nn::NetworkError::EmptyNetwork.into();
        assert!(e.to_string().contains("network"));
        assert!(e.source().is_some());
        let e: CoreError = mnc_mpsoc::MpsocError::InvalidParameter {
            what: "x".to_string(),
        }
        .into();
        assert!(e.source().is_some());
        let e: CoreError = mnc_predictor::PredictorError::EmptyDataset.into();
        assert!(e.source().is_some());
        let e: CoreError = mnc_dynamic::DynamicError::InvalidStageCount { stages: 0 }.into();
        assert!(e.source().is_some());
        let plain = CoreError::InvalidMapping {
            reason: "duplicate".to_string(),
        };
        assert!(plain.source().is_none());
        assert!(plain.to_string().contains("duplicate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<CoreError>();
    }
}
