//! Fast-path ↔ reference equivalence property tests.
//!
//! The evaluation fast path (closed-form accuracy over the
//! sorted-difficulty index, precomputed cost tables, prefix-scan
//! assembly) promises **bit-identical** results to the retained reference
//! implementations. These properties drive random partitions, indicators,
//! mappings and DVFS assignments across two model presets and two
//! platforms through both pipelines and compare every float by bit
//! pattern:
//!
//! * `prop_accuracy_fast_path_equals_reference` —
//!   [`AccuracyModel::evaluate`] vs [`AccuracyModel::evaluate_reference`],
//! * `prop_tabled_performance_equals_estimator_path` —
//!   [`evaluate_performance_tabled`] vs [`evaluate_performance`] (and the
//!   tabled simulator against the closed-form recursion),
//! * `prop_evaluator_fast_path_equals_reference_pipeline` — the whole
//!   [`Evaluator::evaluate`] vs [`Evaluator::evaluate_reference`],
//! * `prop_fused_evaluation_equals_transform_pipeline` — the fused path
//!   ([`Evaluator::evaluate_fused`]: `SliceGrid` + grid performance + the
//!   parts-based accuracy call, no materialised `DynamicNetwork`) vs
//!   [`Evaluator::evaluate`].

use mnc_core::perf::{evaluate_performance, evaluate_performance_tabled};
use mnc_core::{
    CostTable, DvfsAssignment, Evaluator, EvaluatorBuilder, ExecutionTrace, Mapping, MappingConfig,
};
use mnc_dynamic::{
    AccuracyModel, AccuracyProfile, DynamicNetwork, IndicatorMatrix, PartitionMatrix,
    SyntheticValidationSet,
};
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::models::{tiny_cnn, visformer_tiny, ModelPreset};
use mnc_nn::{ImportanceModel, Network};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// The model × platform grid the properties sweep (two presets, two
/// platforms — `dual_test` is 2 homogeneous-ish units, `agx_xavier` is the
/// paper's heterogeneous GPU + DLA target).
fn scenario(index: usize) -> (Network, Platform) {
    let network = match index % 2 {
        0 => tiny_cnn(ModelPreset::cifar10()),
        _ => visformer_tiny(ModelPreset::cifar100()),
    };
    let platform = match (index / 2) % 2 {
        0 => Platform::dual_test(),
        _ => Platform::agx_xavier(),
    };
    (network, platform)
}

/// A uniformly random valid configuration: random 8-slot splits per
/// partitionable layer, random forwarding bits, a random compute-unit
/// permutation and random per-stage DVFS levels — the same candidate
/// space `mnc_optim::Genome::random` spans.
fn random_config(network: &Network, platform: &Platform, rng: &mut StdRng) -> MappingConfig {
    let stages = platform.num_compute_units();

    let uniform_row = vec![1.0 / stages as f64; stages];
    let mut rows = vec![uniform_row; network.num_layers()];
    for layer in network.partitionable_layers() {
        let mut slots = vec![0u32; stages];
        for _ in 0..8 {
            slots[rng.random_range(0..stages)] += 1;
        }
        rows[layer.0] = slots.iter().map(|s| f64::from(*s) / 8.0).collect();
    }
    let partition = PartitionMatrix::from_rows(network, rows).expect("random split is valid");

    let density = rng.random::<f64>();
    let indicator_rows: Vec<Vec<bool>> = (0..network.num_layers())
        .map(|_| {
            (0..stages)
                .map(|stage| stage + 1 < stages && rng.random::<f64>() < density)
                .collect()
        })
        .collect();
    let indicator =
        IndicatorMatrix::from_rows(network, indicator_rows).expect("random indicator is valid");

    let mut cus: Vec<usize> = (0..stages).collect();
    cus.shuffle(rng);
    let mapping =
        Mapping::new(cus.iter().map(|&i| CuId(i)).collect(), platform).expect("permutation");
    let levels: Vec<usize> = cus
        .iter()
        .map(|&cu| {
            let table = platform.compute_unit(CuId(cu)).expect("cu in range").dvfs();
            rng.random_range(0..table.num_levels())
        })
        .collect();
    let dvfs = DvfsAssignment::new(levels, &mapping, platform).expect("levels in range");
    MappingConfig::new(partition, indicator, mapping, dvfs).expect("config is consistent")
}

fn assert_bits_eq(label: &str, fast: &[f64], reference: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.len(), reference.len());
    for (index, (a, b)) in fast.iter().zip(reference).enumerate() {
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "{label}[{index}]: fast {a} != reference {b}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn prop_accuracy_fast_path_equals_reference(
        seed in 0u64..1_000_000,
        scenario_index in 0usize..4,
        skew in 0.5f64..2.0,
    ) {
        let (network, platform) = scenario(scenario_index);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = random_config(&network, &platform, &mut rng);
        let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)
            .expect("transform succeeds");

        let profile = if scenario_index % 2 == 0 {
            AccuracyProfile::vgg19_cifar100()
        } else {
            AccuracyProfile::visformer_cifar100()
        };
        let model = AccuracyModel::new(
            profile,
            ImportanceModel::synthetic(&network, seed ^ 0xabcd, 1.5),
        )
        .expect("profile is valid");
        let dataset = SyntheticValidationSet::generate(1500, seed.wrapping_add(7), skew);

        let fast = model.evaluate(&dynamic, &dataset);
        let reference = model.evaluate_reference(&dynamic, &dataset);
        prop_assert_eq!(&fast, &reference);
        assert_bits_eq("stage_capacity", &fast.stage_capacity, &reference.stage_capacity)?;
        assert_bits_eq("stage_accuracy", &fast.stage_accuracy, &reference.stage_accuracy)?;
        prop_assert_eq!(fast.exit_counts, reference.exit_counts);
        prop_assert_eq!(fast.newly_correct, reference.newly_correct);
        prop_assert!(fast.overall_accuracy.to_bits() == reference.overall_accuracy.to_bits());
        prop_assert!(
            fast.average_stages_executed.to_bits()
                == reference.average_stages_executed.to_bits()
        );
    }

    #[test]
    fn prop_tabled_performance_equals_estimator_path(
        seed in 0u64..1_000_000,
        scenario_index in 0usize..4,
    ) {
        let (network, platform) = scenario(scenario_index);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = random_config(&network, &platform, &mut rng);
        let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)
            .expect("transform succeeds");
        let table = CostTable::build(&network, &platform);

        let reference =
            evaluate_performance(&dynamic, &config, &platform, &mnc_core::Estimator::Analytic)
                .expect("estimator path succeeds");
        let tabled = evaluate_performance_tabled(&dynamic, &config, &platform, &table)
            .expect("tabled path succeeds");
        prop_assert_eq!(&reference, &tabled);
        for (a, b) in reference.stages.iter().zip(&tabled.stages) {
            prop_assert!(a.latency_ms.to_bits() == b.latency_ms.to_bits());
            prop_assert!(a.busy_ms.to_bits() == b.busy_ms.to_bits());
            prop_assert!(a.energy_mj.to_bits() == b.energy_mj.to_bits());
            prop_assert!(a.transfer_ms.to_bits() == b.transfer_ms.to_bits());
            prop_assert!(a.transfer_energy_mj.to_bits() == b.transfer_energy_mj.to_bits());
        }

        let trace_reference = ExecutionTrace::simulate(
            &dynamic,
            &config,
            &platform,
            &mnc_core::Estimator::Analytic,
        )
        .expect("simulate succeeds");
        let trace_tabled = ExecutionTrace::simulate_tabled(&dynamic, &config, &platform, &table)
            .expect("tabled simulate succeeds");
        prop_assert_eq!(trace_reference, trace_tabled);
    }

    #[test]
    fn prop_evaluator_fast_path_equals_reference_pipeline(
        seed in 0u64..1_000_000,
        scenario_index in 0usize..4,
    ) {
        let (network, platform) = scenario(scenario_index);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let config = random_config(&network, &platform, &mut rng);
        let evaluator: Evaluator = EvaluatorBuilder::new(network, platform)
            .validation_samples(1000)
            .validation_seed(seed)
            .build()
            .expect("evaluator builds");

        let fast = evaluator.evaluate(&config).expect("fast path succeeds");
        let reference = evaluator
            .evaluate_reference(&config)
            .expect("reference path succeeds");
        prop_assert_eq!(&fast, &reference);
        prop_assert!(fast.objective.to_bits() == reference.objective.to_bits());
        prop_assert!(
            fast.average_latency_ms.to_bits() == reference.average_latency_ms.to_bits()
        );
        prop_assert!(
            fast.average_energy_mj.to_bits() == reference.average_energy_mj.to_bits()
        );
        prop_assert!(
            fast.worst_case_latency_ms.to_bits() == reference.worst_case_latency_ms.to_bits()
        );
        prop_assert!(fast.full_energy_mj.to_bits() == reference.full_energy_mj.to_bits());
        prop_assert!(fast.accuracy.to_bits() == reference.accuracy.to_bits());
        prop_assert_eq!(fast.exit_counts, reference.exit_counts);
    }

    #[test]
    fn prop_fused_evaluation_equals_transform_pipeline(
        seed in 0u64..1_000_000,
        scenario_index in 0usize..4,
    ) {
        let (network, platform) = scenario(scenario_index);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(17));
        let config = random_config(&network, &platform, &mut rng);
        let evaluator: Evaluator = EvaluatorBuilder::new(network, platform)
            .validation_samples(1000)
            .validation_seed(seed)
            .build()
            .expect("evaluator builds");

        let fused = evaluator.evaluate_fused(&config).expect("fused path succeeds");
        let transformed = evaluator.evaluate(&config).expect("transform path succeeds");
        prop_assert_eq!(&fused, &transformed);
        prop_assert!(fused.objective.to_bits() == transformed.objective.to_bits());
        prop_assert!(
            fused.average_latency_ms.to_bits() == transformed.average_latency_ms.to_bits()
        );
        prop_assert!(
            fused.average_energy_mj.to_bits() == transformed.average_energy_mj.to_bits()
        );
        prop_assert!(
            fused.worst_case_latency_ms.to_bits()
                == transformed.worst_case_latency_ms.to_bits()
        );
        prop_assert!(fused.full_energy_mj.to_bits() == transformed.full_energy_mj.to_bits());
        prop_assert!(
            fused.stored_feature_bytes.to_bits()
                == transformed.stored_feature_bytes.to_bits()
        );
        prop_assert!(fused.fmap_reuse.to_bits() == transformed.fmap_reuse.to_bits());
        prop_assert!(fused.accuracy.to_bits() == transformed.accuracy.to_bits());
        prop_assert_eq!(&fused.stage_performance, &transformed.stage_performance);
        for (a, b) in fused.stage_performance.iter().zip(&transformed.stage_performance) {
            prop_assert!(a.latency_ms.to_bits() == b.latency_ms.to_bits());
            prop_assert!(a.busy_ms.to_bits() == b.busy_ms.to_bits());
            prop_assert!(a.energy_mj.to_bits() == b.energy_mj.to_bits());
            prop_assert!(a.transfer_ms.to_bits() == b.transfer_ms.to_bits());
            prop_assert!(a.transfer_energy_mj.to_bits() == b.transfer_energy_mj.to_bits());
        }
        prop_assert_eq!(fused.exit_counts, transformed.exit_counts);
    }
}
