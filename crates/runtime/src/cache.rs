//! The sharded evaluation cache.
//!
//! Evaluating one mapping configuration — dynamic transformation,
//! concurrent performance model, accuracy/exit simulation — costs on the
//! order of a millisecond; a search performs thousands of them, and a
//! service replays many overlapping searches. The cache memoises complete
//! [`EvaluationResult`]s (plus the decoded configuration) under a 128-bit
//! logical key:
//!
//! * the **evaluator fingerprint** ([`mnc_core::Evaluator::fingerprint`]):
//!   network, platform, accuracy model, validation set, constraints,
//!   estimator and objective weights — everything that, held fixed, makes
//!   evaluation a pure function of the candidate,
//! * the **genome fingerprint** ([`mnc_optim::Genome::fingerprint`]): the
//!   candidate itself.
//!
//! Entries are spread over [`SHARDS`] independently locked hash maps so
//! parallel population evaluation rarely contends on a lock: the shard
//! index comes from the high bits of the key hash, which the per-shard
//! `HashMap` does not reuse. Residency is bounded ([`DEFAULT_CAPACITY`]
//! entries by default, configurable via [`EvalCache::with_capacity`]) with
//! per-shard FIFO eviction, so a long-lived service cannot grow without
//! limit. All counters are relaxed atomics — they feed throughput
//! dashboards, not control flow.

use mnc_core::{EvaluationResult, MappingConfig, StableHasher};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 64;

/// Default capacity. A cached entry is a full decoded configuration plus
/// its metrics — a few KiB each for the larger models — so this default
/// bounds worst-case residency to the low hundreds of MiB; deployments
/// with more memory can raise it via [`EvalCache::with_capacity`].
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One cached evaluation: the decoded configuration and its metrics.
type Entry = (MappingConfig, EvaluationResult);

/// One shard: the entry map plus insertion order for FIFO eviction.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u128, Entry>,
    order: VecDeque<u128>,
}

/// A sharded, fingerprint-keyed map from (evaluator, genome) to evaluation
/// results, bounded to a fixed capacity with per-shard FIFO eviction.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh evaluation.
    pub misses: u64,
    /// Entries inserted (≤ misses; concurrent misses may race to insert).
    pub insertions: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl EvalCache {
    /// Creates an empty cache with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to roughly `capacity` entries
    /// (rounded up to a multiple of [`SHARDS`]; minimum one per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound (total across shards).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Combines the evaluator and genome fingerprints into one cache key.
    pub fn key(evaluator_fingerprint: u64, genome_fingerprint: u64) -> u128 {
        (u128::from(evaluator_fingerprint) << 64) | u128::from(genome_fingerprint)
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        // Re-mix so keys differing only in high bits still spread, then
        // take the top bits (HashMap uses the low ones).
        let mut hasher = StableHasher::new();
        hasher.write_u64((key >> 64) as u64);
        hasher.write_u64(key as u64);
        let index = (hasher.finish() >> 32) as usize % SHARDS;
        &self.shards[index]
    }

    /// Looks up a cached evaluation, cloning it out.
    pub fn get(&self, key: u128) -> Option<Entry> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard lock never poisoned")
            .entries
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts an evaluation, evicting the shard's oldest entries when the
    /// capacity bound is reached. (Last writer wins; results for equal
    /// keys are identical by construction, so the race is benign.)
    pub fn insert(&self, key: u128, config: MappingConfig, result: EvaluationResult) {
        let mut shard = self
            .shard(key)
            .lock()
            .expect("cache shard lock never poisoned");
        if shard.entries.insert(key, (config, result)).is_none() {
            shard.order.push_back(key);
            while shard.entries.len() > self.shard_capacity {
                let Some(oldest) = shard.order.pop_front() else {
                    break;
                };
                if shard.entries.remove(&oldest).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("cache shard lock never poisoned")
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock never poisoned");
            shard.entries.clear();
            shard.order.clear();
        }
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_mpsoc::Platform;
    use mnc_nn::models::{tiny_cnn, ModelPreset};

    fn sample_entry() -> Entry {
        let network = tiny_cnn(ModelPreset::cifar10());
        let platform = Platform::dual_test();
        let config = MappingConfig::uniform(&network, &platform).unwrap();
        let evaluator = mnc_core::EvaluatorBuilder::new(network, platform)
            .validation_samples(200)
            .build()
            .unwrap();
        let result = evaluator.evaluate(&config).unwrap();
        (config, result)
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = EvalCache::new();
        let key = EvalCache::key(1, 2);
        assert!(cache.get(key).is_none());
        let (config, result) = sample_entry();
        cache.insert(key, config.clone(), result.clone());
        let (cached_config, cached_result) = cache.get(key).unwrap();
        assert_eq!(cached_config, config);
        assert_eq!(cached_result, result);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_fingerprint_halves_make_distinct_keys() {
        assert_ne!(EvalCache::key(1, 2), EvalCache::key(2, 1));
        assert_ne!(EvalCache::key(0, 7), EvalCache::key(7, 0));
    }

    #[test]
    fn entries_spread_over_shards() {
        let cache = EvalCache::new();
        let (config, result) = sample_entry();
        for genome in 0..256u64 {
            cache.insert(EvalCache::key(42, genome), config.clone(), result.clone());
        }
        assert_eq!(cache.len(), 256);
        let occupied = cache
            .shards
            .iter()
            .filter(|shard| !shard.lock().unwrap().entries.is_empty())
            .count();
        // 256 keys over 64 shards: statistically almost every shard is hit;
        // require at least half to catch a broken shard function.
        assert!(occupied >= SHARDS / 2, "only {occupied} shards occupied");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_oldest_entries() {
        // Capacity SHARDS → one entry per shard.
        let cache = EvalCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let (config, result) = sample_entry();
        for genome in 0..(4 * SHARDS as u64) {
            cache.insert(EvalCache::key(9, genome), config.clone(), result.clone());
        }
        assert!(
            cache.len() <= cache.capacity(),
            "{} entries exceed capacity {}",
            cache.len(),
            cache.capacity()
        );
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        // Re-inserting an existing key must not evict or grow.
        let resident = cache.len();
        let evictions = stats.evictions;
        for shard in &cache.shards {
            // Take the key and drop the guard before touching the cache
            // again — `insert` locks the same shard.
            let key = shard.lock().unwrap().order.front().copied();
            if let Some(key) = key {
                cache.insert(key, config.clone(), result.clone());
                assert_eq!(cache.len(), resident);
                assert_eq!(cache.stats().evictions, evictions);
                break;
            }
        }
    }
}
