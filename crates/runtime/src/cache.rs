//! The sharded evaluation cache.
//!
//! Evaluating one mapping configuration — dynamic transformation,
//! concurrent performance model, accuracy/exit simulation — costs on the
//! order of a millisecond; a search performs thousands of them, and a
//! service replays many overlapping searches. The cache memoises complete
//! [`EvaluationResult`]s (plus the decoded configuration) under a 128-bit
//! logical key:
//!
//! * the **evaluator fingerprint** ([`mnc_core::Evaluator::fingerprint`]):
//!   network, platform, accuracy model, validation set, constraints,
//!   estimator and objective weights — everything that, held fixed, makes
//!   evaluation a pure function of the candidate,
//! * the **genome fingerprint** ([`mnc_optim::Genome::fingerprint`]): the
//!   candidate itself.
//!
//! Entries are spread over [`SHARDS`] independently locked hash maps so
//! parallel population evaluation rarely contends on a lock: the shard
//! index comes from the high bits of the key hash, which the per-shard
//! `HashMap` does not reuse. Residency is bounded ([`DEFAULT_CAPACITY`]
//! entries by default, configurable via [`EvalCache::with_capacity`]) with
//! per-shard **second-chance (CLOCK) eviction**: every [`EvalCache::get`]
//! hit sets the entry's reference bit, and the evictor skips (and clears)
//! referenced entries once before removing them, so repeatedly-hit Pareto
//! elites survive capacity pressure that plain FIFO would age them out
//! under. All counters are relaxed atomics — they feed throughput
//! dashboards, not control flow.
//!
//! The cache also arbitrates *concurrent misses*: [`EvalCache::begin_compute`]
//! hands exactly one caller a [`ComputeGuard`] for a missing key while
//! every other caller blocks until the owner inserts the entry (or gives
//! up), so N threads racing on one key perform one evaluation instead of N.

use mnc_core::{EvaluationResult, MappingConfig, StableHasher};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 64;

/// Default capacity. A cached entry is a full decoded configuration plus
/// its metrics — a few KiB each for the larger models — so this default
/// bounds worst-case residency to the low hundreds of MiB; deployments
/// with more memory can raise it via [`EvalCache::with_capacity`].
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One cached evaluation: the decoded configuration and its metrics,
/// `Arc`-backed so a hit clones two pointers instead of a full decoded
/// configuration (the ROADMAP's "allocation-free cache hits" refinement).
/// The same `Arc`s flow through `mnc_optim::EvaluatedConfig` into search
/// archives and response fronts, so one evaluation is allocated once
/// however many times it is served.
type Entry = (Arc<MappingConfig>, Arc<EvaluationResult>);

/// A resident entry plus its second-chance reference bit.
#[derive(Debug)]
struct Slot {
    entry: Entry,
    /// Set on every hit, cleared when the CLOCK hand passes the entry.
    referenced: bool,
}

/// One shard: the entry map plus the CLOCK ring (insertion order, with
/// referenced entries recycled to the back instead of evicted).
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u128, Slot>,
    order: VecDeque<u128>,
}

impl Shard {
    /// Evicts entries until the shard is back within `capacity`, giving
    /// each referenced entry one second chance (its bit is cleared and the
    /// key recycled to the back of the ring). Terminates because every
    /// step either evicts an entry or clears one reference bit.
    fn evict_to_capacity(&mut self, capacity: usize, evictions: &AtomicU64) {
        while self.entries.len() > capacity {
            let Some(candidate) = self.order.pop_front() else {
                break;
            };
            match self.entries.get_mut(&candidate) {
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    self.order.push_back(candidate);
                }
                Some(_) => {
                    self.entries.remove(&candidate);
                    evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Stale ring key (defensive; the ring and map are kept in
                // lockstep, but a mismatch must not wedge the evictor).
                None => {}
            }
        }
    }
}

/// One shard's in-flight computation registry: the keys currently owned
/// by some thread plus the condvar their waiters sleep on. Sharded like
/// the entry maps so the miss path contends no more than the hit path,
/// and a completing computation only wakes waiters of its own shard.
#[derive(Debug, Default)]
struct InFlight {
    keys: Mutex<HashSet<u128>>,
    done: Condvar,
}

/// A sharded, fingerprint-keyed map from (evaluator, genome) to evaluation
/// results, bounded to a fixed capacity with per-shard second-chance
/// (CLOCK) eviction and per-key in-flight miss coalescing.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    /// Per-shard in-flight sets (see [`EvalCache::begin_compute`]),
    /// indexed by the same shard function as `shards`.
    in_flight: Vec<InFlight>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

/// A point-in-time snapshot of the cache counters (serializable so the
/// wire front-end's `Stats` query and the throughput bench's `--json`
/// report carry it verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the compute path. Most become fresh
    /// evaluations; some are coalesced onto a concurrent computation of
    /// the same key instead (see [`CacheStats::coalesced`]).
    pub misses: u64,
    /// Entries inserted under a key that was not resident (always
    /// ≤ misses; overwriting a resident key does not count).
    pub insertions: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Misses that waited for a concurrent computation of the same key
    /// and were served its result — duplicate evaluations avoided.
    pub coalesced: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// The outcome of [`EvalCache::begin_compute`] for a missing key.
#[derive(Debug)]
pub enum ComputeLease<'a> {
    /// The caller owns the evaluation for this key: it must evaluate,
    /// [`EvalCache::insert`] the result, and drop the guard (dropping
    /// without inserting — e.g. on an evaluation error — safely passes
    /// ownership to the next waiter).
    Owner(ComputeGuard<'a>),
    /// Another thread finished computing this key while the caller
    /// waited; its result is returned directly.
    Ready(Box<Entry>),
}

/// Exclusive ownership of the in-flight computation for one key.
///
/// Dropping the guard releases the key and wakes every waiter, whether or
/// not a result was inserted — waiters re-check the cache and the first
/// one to find the key still missing becomes the next owner.
#[derive(Debug)]
pub struct ComputeGuard<'a> {
    cache: &'a EvalCache,
    key: u128,
}

impl Drop for ComputeGuard<'_> {
    fn drop(&mut self) {
        let in_flight = self.cache.in_flight_shard(self.key);
        let mut keys = in_flight
            .keys
            .lock()
            .expect("in-flight set lock never poisoned");
        keys.remove(&self.key);
        drop(keys);
        in_flight.done.notify_all();
    }
}

impl EvalCache {
    /// Creates an empty cache with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to roughly `capacity` entries
    /// (rounded up to a multiple of [`SHARDS`]; minimum one per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            in_flight: (0..SHARDS).map(|_| InFlight::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound (total across shards).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Combines the evaluator and genome fingerprints into one cache key.
    pub fn key(evaluator_fingerprint: u64, genome_fingerprint: u64) -> u128 {
        (u128::from(evaluator_fingerprint) << 64) | u128::from(genome_fingerprint)
    }

    fn shard_index(key: u128) -> usize {
        // Re-mix so keys differing only in high bits still spread, then
        // take the top bits (HashMap uses the low ones).
        let mut hasher = StableHasher::new();
        hasher.write_u64((key >> 64) as u64);
        hasher.write_u64(key as u64);
        (hasher.finish() >> 32) as usize % SHARDS
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[Self::shard_index(key)]
    }

    fn in_flight_shard(&self, key: u128) -> &InFlight {
        &self.in_flight[Self::shard_index(key)]
    }

    /// Looks up a cached evaluation, cloning it out and marking the entry
    /// recently used (its second-chance bit protects it from the next
    /// eviction pass).
    pub fn get(&self, key: u128) -> Option<Entry> {
        let found = {
            let mut shard = self
                .shard(key)
                .lock()
                .expect("cache shard lock never poisoned");
            shard.entries.get_mut(&key).map(|slot| {
                slot.referenced = true;
                slot.entry.clone()
            })
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up a cached evaluation without touching the hit/miss counters
    /// or the entry's recency — for callers observing the cache (waiters,
    /// tests) rather than serving traffic through it.
    pub fn peek(&self, key: u128) -> Option<Entry> {
        self.shard(key)
            .lock()
            .expect("cache shard lock never poisoned")
            .entries
            .get(&key)
            .map(|slot| slot.entry.clone())
    }

    /// Claims the computation of a missing key.
    ///
    /// If no thread is computing `key`, the caller becomes the owner and
    /// receives a [`ComputeGuard`]; it should evaluate, [`EvalCache::insert`]
    /// and drop the guard. If another thread already owns `key`, the call
    /// blocks until that computation completes and returns its result as
    /// [`ComputeLease::Ready`] — or, when the owner released without
    /// inserting (evaluation error), promotes the caller to owner.
    ///
    /// The cache is re-checked *after* the claim succeeds, closing the
    /// race where a caller misses, a concurrent owner inserts and
    /// releases, and the caller would otherwise re-evaluate a key that is
    /// now resident. An `Owner` lease therefore guarantees the key was
    /// absent at claim time — and stays un-inserted until the owner acts,
    /// since every writer claims the key first.
    pub fn begin_compute(&self, key: u128) -> ComputeLease<'_> {
        let in_flight = self.in_flight_shard(key);
        let mut keys = in_flight
            .keys
            .lock()
            .expect("in-flight set lock never poisoned");
        while !keys.insert(key) {
            keys = in_flight
                .done
                .wait(keys)
                .expect("in-flight set lock never poisoned");
            // Re-check outside the in-flight lock: peek takes a shard lock
            // and the two must never be held together.
            drop(keys);
            if let Some(entry) = self.peek(key) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return ComputeLease::Ready(Box::new(entry));
            }
            keys = in_flight
                .keys
                .lock()
                .expect("in-flight set lock never poisoned");
        }
        drop(keys);
        let guard = ComputeGuard { cache: self, key };
        if let Some(entry) = self.peek(key) {
            // The key became resident between the caller's miss and its
            // claim; releasing the just-taken guard wakes any newer
            // waiters, and the entry is served without re-evaluation.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            drop(guard);
            return ComputeLease::Ready(Box::new(entry));
        }
        ComputeLease::Owner(guard)
    }

    /// Inserts an evaluation, evicting via second chance when the shard is
    /// over capacity. (Last writer wins; results for equal keys are
    /// identical by construction, so the race is benign.)
    pub fn insert(&self, key: u128, config: Arc<MappingConfig>, result: Arc<EvaluationResult>) {
        let mut shard = self
            .shard(key)
            .lock()
            .expect("cache shard lock never poisoned");
        let slot = Slot {
            entry: (config, result),
            referenced: false,
        };
        if shard.entries.insert(key, slot).is_none() {
            shard.order.push_back(key);
            shard.evict_to_capacity(self.shard_capacity, &self.evictions);
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("cache shard lock never poisoned")
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock never poisoned");
            shard.entries.clear();
            shard.order.clear();
        }
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Appends the cache's counters and occupancy to a metrics snapshot
    /// (the cache owns its atomics, so the service's registry does not
    /// duplicate them).
    pub fn record_metrics(&self, snapshot: &mut mnc_telemetry::MetricsSnapshot) {
        use mnc_telemetry::MetricKey;
        let stats = self.stats();
        snapshot.push_counter(MetricKey::plain("mnc_cache_hits_total"), stats.hits);
        snapshot.push_counter(MetricKey::plain("mnc_cache_misses_total"), stats.misses);
        snapshot.push_counter(
            MetricKey::plain("mnc_cache_insertions_total"),
            stats.insertions,
        );
        snapshot.push_counter(
            MetricKey::plain("mnc_cache_evictions_total"),
            stats.evictions,
        );
        snapshot.push_counter(
            MetricKey::plain("mnc_cache_coalesced_total"),
            stats.coalesced,
        );
        snapshot.push_gauge(MetricKey::plain("mnc_cache_entries"), stats.entries as f64);
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_mpsoc::Platform;
    use mnc_nn::models::{tiny_cnn, ModelPreset};
    use std::sync::mpsc;

    fn sample_entry() -> Entry {
        let network = tiny_cnn(ModelPreset::cifar10());
        let platform = Platform::dual_test();
        let config = MappingConfig::uniform(&network, &platform).unwrap();
        let evaluator = mnc_core::EvaluatorBuilder::new(network, platform)
            .validation_samples(200)
            .build()
            .unwrap();
        let result = evaluator.evaluate(&config).unwrap();
        (Arc::new(config), Arc::new(result))
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = EvalCache::new();
        let key = EvalCache::key(1, 2);
        assert!(cache.get(key).is_none());
        let (config, result) = sample_entry();
        cache.insert(key, config.clone(), result.clone());
        let (cached_config, cached_result) = cache.get(key).unwrap();
        assert_eq!(cached_config, config);
        assert_eq!(cached_result, result);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overwriting_a_resident_key_does_not_count_as_insertion() {
        // Regression: `insert` used to bump `insertions` unconditionally,
        // so duplicate-key overwrites broke the `insertions ≤ misses`
        // invariant documented on `CacheStats`.
        let cache = EvalCache::new();
        let key = EvalCache::key(3, 4);
        let (config, result) = sample_entry();
        assert!(cache.get(key).is_none()); // 1 miss
        cache.insert(key, config.clone(), result.clone());
        cache.insert(key, config.clone(), result.clone());
        cache.insert(key, config, result);
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1, "overwrites inflated the counter");
        assert_eq!(stats.entries, 1);
        assert!(stats.insertions <= stats.misses);
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let cache = EvalCache::new();
        let key = EvalCache::key(5, 6);
        assert!(cache.peek(key).is_none());
        let (config, result) = sample_entry();
        cache.insert(key, config, result);
        assert!(cache.peek(key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn distinct_fingerprint_halves_make_distinct_keys() {
        assert_ne!(EvalCache::key(1, 2), EvalCache::key(2, 1));
        assert_ne!(EvalCache::key(0, 7), EvalCache::key(7, 0));
    }

    #[test]
    fn entries_spread_over_shards() {
        let cache = EvalCache::new();
        let (config, result) = sample_entry();
        for genome in 0..256u64 {
            cache.insert(EvalCache::key(42, genome), config.clone(), result.clone());
        }
        assert_eq!(cache.len(), 256);
        let occupied = cache
            .shards
            .iter()
            .filter(|shard| !shard.lock().unwrap().entries.is_empty())
            .count();
        // 256 keys over 64 shards: statistically almost every shard is hit;
        // require at least half to catch a broken shard function.
        assert!(occupied >= SHARDS / 2, "only {occupied} shards occupied");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_entries() {
        // Capacity SHARDS → one entry per shard.
        let cache = EvalCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let (config, result) = sample_entry();
        for genome in 0..(4 * SHARDS as u64) {
            cache.insert(EvalCache::key(9, genome), config.clone(), result.clone());
        }
        assert!(
            cache.len() <= cache.capacity(),
            "{} entries exceed capacity {}",
            cache.len(),
            cache.capacity()
        );
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        // Re-inserting an existing key must not evict or grow.
        let resident = cache.len();
        let evictions = stats.evictions;
        for shard in &cache.shards {
            // Take the key and drop the guard before touching the cache
            // again — `insert` locks the same shard.
            let key = shard.lock().unwrap().order.front().copied();
            if let Some(key) = key {
                cache.insert(key, config.clone(), result.clone());
                assert_eq!(cache.len(), resident);
                assert_eq!(cache.stats().evictions, evictions);
                break;
            }
        }
    }

    #[test]
    fn rehit_entries_outlive_fifo_aged_ones() {
        // One shard's worth of keys that all land in the same shard, so the
        // eviction order within it is fully controlled.
        let cache = EvalCache::with_capacity(SHARDS * 4); // 4 entries/shard
        let (config, result) = sample_entry();

        // Find 5 keys sharing one shard.
        let mut by_shard: HashMap<usize, Vec<u128>> = HashMap::new();
        let mut colliding: Vec<u128> = Vec::new();
        for genome in 0..10_000u64 {
            let key = EvalCache::key(7, genome);
            let index = cache
                .shards
                .iter()
                .position(|shard| std::ptr::eq(shard, cache.shard(key)))
                .unwrap();
            let keys = by_shard.entry(index).or_default();
            keys.push(key);
            if keys.len() == 5 {
                colliding = keys.clone();
                break;
            }
        }
        assert_eq!(colliding.len(), 5, "no 5-way shard collision in range");

        // Fill the shard to capacity; keys[0] is the FIFO-oldest.
        for &key in &colliding[..4] {
            cache.insert(key, config.clone(), result.clone());
        }
        // Re-hit the oldest entry: under FIFO it would still be evicted
        // first; under second chance its reference bit saves it.
        assert!(cache.get(colliding[0]).is_some());
        // Overflow the shard: the evictor must skip the referenced oldest
        // entry and evict the unreferenced second-oldest instead.
        cache.insert(colliding[4], config.clone(), result.clone());
        assert!(
            cache.peek(colliding[0]).is_some(),
            "re-hit entry was evicted FIFO-style"
        );
        assert!(
            cache.peek(colliding[1]).is_none(),
            "unreferenced entry survived over a referenced one"
        );
    }

    #[test]
    fn begin_compute_owner_then_ready() {
        let cache = EvalCache::new();
        let key = EvalCache::key(11, 12);
        let (config, result) = sample_entry();

        // Sole caller on a missing key becomes the owner.
        let ComputeLease::Owner(guard) = cache.begin_compute(key) else {
            panic!("first caller must own the computation");
        };

        // A second thread claiming the same key blocks until the owner
        // inserts and releases, then receives the entry directly.
        let (started_tx, started_rx) = mpsc::channel();
        let waiter = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                started_tx.send(()).unwrap();
                cache.begin_compute(key)
            });
            started_rx.recv().unwrap();
            cache.insert(key, config.clone(), result.clone());
            drop(guard);
            handle.join().unwrap()
        });
        // Whether the waiter blocked on the owner or arrived after the
        // release, the post-claim cache re-check serves the entry.
        let ComputeLease::Ready(entry) = waiter else {
            panic!("second caller must be served the owner's result");
        };
        assert_eq!(*entry, (config, result));
        assert_eq!(cache.stats().coalesced, 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn abandoned_compute_promotes_the_next_caller() {
        let cache = EvalCache::new();
        let key = EvalCache::key(13, 14);
        let ComputeLease::Owner(guard) = cache.begin_compute(key) else {
            panic!("first caller must own the computation");
        };
        // Owner gives up without inserting (an evaluation error): the key
        // must become claimable again, not wedged in the in-flight set.
        drop(guard);
        let ComputeLease::Owner(_) = cache.begin_compute(key) else {
            panic!("abandoned key must be claimable again");
        };
    }
}
