//! The batch scheduler: coalescing + cross-request parallelism.
//!
//! Since the pipeline refactor this module holds the batch *types*
//! ([`BatchConfig`], [`BatchStats`], [`BatchReport`]) and the
//! normalisation/fingerprint helpers; the actual grouping and the scoped
//! worker pool are the batch-level stages of
//! [`crate::pipeline::RequestPipeline::run_batch`], which
//! [`MappingService::submit_batch_with`] delegates to — so batch traffic
//! and single submits run the identical staged path.
//!
//! [`MappingService::submit`] answers one request; a deployment-planning
//! front-end typically holds a *batch* of them, many identical (several
//! planners asking about the same model/board under the same budget at
//! once). Serving such a batch sequentially wastes the machine twice:
//! duplicate requests each re-run a full search, and distinct requests
//! queue behind each other even when cores are idle.
//!
//! [`MappingService::submit_batch_with`] fixes both:
//!
//! 1. **Coalescing** — every request is fingerprinted over its *full*
//!    request content (model, platform, weights, constraints, validation
//!    size, search budget, selection, seed — everything that determines
//!    the answer; the thread count is normalised out because it never
//!    changes results). Requests with equal fingerprints form one group:
//!    the group leader runs one search and every member receives a clone
//!    of its response.
//! 2. **Cross-request parallelism** — distinct groups are executed on a
//!    scoped worker pool. [`BatchConfig`] carries the per-batch thread
//!    budget: `max_concurrent` workers each run searches whose inner
//!    population evaluation uses `threads_per_request` threads, so
//!    `max_concurrent × threads_per_request` ≈ the machine's cores and the
//!    outer batch never oversubscribes what the inner searches are
//!    already using.
//!
//! Determinism is untouched for cold requests: a cold search's outcome
//! depends only on the request (seed included), never on thread counts or
//! scheduling order, so every cold response is bit-identical to serving
//! the same request alone through [`MappingService::submit`] —
//! property-tested in `tests/service.rs` for `max_concurrent ∈ {1, N}`.
//! Requests that opt into `MappingRequest::warm_start` trade that
//! guarantee away by design: their seeds come from the service's elite
//! archive, which concurrent batch-mates and earlier requests mutate, so
//! a warm response depends on scheduling order and service history (see
//! `crate::warmstart`). Coalescing still answers identical warm
//! duplicates with one search's response.

use crate::error::RuntimeError;
use crate::service::{MappingRequest, MappingResponse, MappingService};
use serde::{Deserialize, Serialize};

/// Thread budget for one batch: how many requests run at once, and how
/// many threads each request's inner search may use.
///
/// Both knobs default (`None`) to a split of the machine's cores:
/// `max_concurrent = min(#distinct requests, cores)` and
/// `threads_per_request = max(1, cores / max_concurrent)`. Explicit values
/// below 1 are treated as 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Upper bound on requests in flight at once (`None` = one per core,
    /// capped at the batch size).
    pub max_concurrent: Option<usize>,
    /// Threads each in-flight request's population evaluation may use
    /// (`None` = the machine's cores divided by the effective
    /// `max_concurrent`). A request's own explicit `threads` is honoured
    /// up to this cap.
    pub threads_per_request: Option<usize>,
}

impl BatchConfig {
    /// The default config: split the machine across the batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of requests served concurrently (minimum 1; 1
    /// reproduces the sequential behaviour exactly).
    #[must_use]
    pub fn max_concurrent(mut self, max_concurrent: usize) -> Self {
        self.max_concurrent = Some(max_concurrent.max(1));
        self
    }

    /// Sets the inner-search thread budget per in-flight request
    /// (minimum 1).
    #[must_use]
    pub fn threads_per_request(mut self, threads: usize) -> Self {
        self.threads_per_request = Some(threads.max(1));
        self
    }

    /// Resolves the two knobs against the machine and the number of
    /// distinct requests, returning `(max_concurrent, threads_per_request)`
    /// (consumed by the pipeline's Coalesce stage).
    pub(crate) fn effective(&self, distinct_requests: usize) -> (usize, usize) {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let concurrency = self
            .max_concurrent
            .unwrap_or(cores)
            .clamp(1, distinct_requests.max(1));
        let per_request = self
            .threads_per_request
            .unwrap_or_else(|| (cores / concurrency).max(1))
            .max(1);
        (concurrency, per_request)
    }
}

/// Batch-level accounting, alongside the per-request [`super::RequestStats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Distinct requests after coalescing — searches actually run.
    pub unique_requests: usize,
    /// Duplicate requests served by cloning a group leader's response
    /// (`requests - unique_requests`).
    pub coalesced_requests: usize,
    /// Worker slots the batch ran with.
    pub max_concurrent: usize,
    /// Inner-search thread budget each worker ran with.
    pub threads_per_request: usize,
    /// Wall time for the whole batch, in milliseconds.
    pub elapsed_ms: f64,
}

impl BatchStats {
    /// Fraction of the batch answered by coalescing onto a group
    /// leader's search, in `[0, 1]` (0 for an empty batch).
    #[must_use]
    pub fn coalesce_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.coalesced_requests as f64 / self.requests as f64
    }
}

/// The outcome of one scheduled batch: per-request responses in request
/// order plus batch-level accounting.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per input request, in input order. Duplicates carry a
    /// clone of their group leader's response (including its
    /// [`super::RequestStats`] — the search ran once).
    pub responses: Vec<Result<MappingResponse, RuntimeError>>,
    /// The input position of each group's leader (its first occurrence),
    /// in group order — the responses whose work was actually performed
    /// this batch. Sum per-request stats over these positions to account
    /// for work done; summing over all responses double-counts every
    /// coalesced duplicate.
    pub leader_positions: Vec<usize>,
    /// Batch-level accounting.
    pub stats: BatchStats,
}

/// The answer-determining content of a request: everything except the
/// thread count, which never changes results, the deadline, which
/// bounds *when* the answer arrives but not what a completed search
/// returns — so a deadlined request coalesces with (and replays the
/// cached response of) its undeadlined twin, and a coalesced follower's
/// tighter deadline never truncates the leader's search — and the
/// tenant/priority pair, which steers scheduling and budget accounting
/// but never the front, so two tenants asking the same question share
/// one search. A zero thread count is invalid rather than
/// answer-neutral, so it is kept distinct — an invalid request must not
/// donate its error to (or steal a front from) valid duplicates. (The
/// pipeline's batch-level Normalize stage.)
pub(crate) fn normalized_for_coalescing(request: &MappingRequest) -> MappingRequest {
    let mut normalized = request.clone();
    if normalized.threads != Some(0) {
        normalized.threads = None;
    }
    normalized.deadline_ms = None;
    normalized.tenant = None;
    normalized.priority = None;
    normalized
}

/// Fingerprint of [`normalized_for_coalescing`] — the grouping hash.
/// Groups additionally compare the normalised requests for equality, so a
/// 64-bit collision between distinct requests splits into two groups
/// instead of silently answering one with the other's front. (The
/// pipeline's batch-level Fingerprint stage hashes its already-normalised
/// requests directly; this one-call form exists for the grouping tests.)
#[cfg(test)]
pub(crate) fn coalescing_key(request: &MappingRequest) -> u64 {
    mnc_core::fingerprint_serialized(&normalized_for_coalescing(request))
}

impl MappingService {
    /// Answers a batch of requests under an explicit [`BatchConfig`]:
    /// identical requests coalesce onto one search, distinct requests run
    /// concurrently within the batch thread budget, and every cold
    /// (non-`warm_start`) response is bit-identical to what
    /// [`MappingService::submit`] returns for the same request.
    /// Warm-started responses additionally depend on what the elite
    /// archive held when their search began (see the module docs).
    pub fn submit_batch_with(
        &self,
        requests: &[MappingRequest],
        config: &BatchConfig,
    ) -> BatchReport {
        self.pipeline().run_batch(requests, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> MappingRequest {
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(300)
            .generations(2)
            .population_size(8)
    }

    #[test]
    fn coalescing_key_ignores_thread_count_only() {
        let base = request();
        assert_eq!(coalescing_key(&base), coalescing_key(&base.clone()));
        assert_eq!(
            coalescing_key(&base.clone().threads(4)),
            coalescing_key(&base),
            "thread count must not split a group"
        );
        assert_eq!(
            coalescing_key(&base.clone().deadline_ms(50)),
            coalescing_key(&base),
            "deadline bounds arrival time, not answer content"
        );
        assert_eq!(
            coalescing_key(&base.clone().tenant("acme").priority(5)),
            coalescing_key(&base),
            "tenant and priority steer scheduling, not answer content"
        );
        assert_ne!(
            coalescing_key(&base.clone().seed(7)),
            coalescing_key(&base),
            "seed is answer-determining"
        );
        assert_ne!(
            coalescing_key(&base.clone().generations(3)),
            coalescing_key(&base),
            "budget is answer-determining"
        );
        // threads == Some(0) is invalid, not answer-neutral: it must not
        // coalesce with valid duplicates.
        let mut zero_threads = base.clone();
        zero_threads.threads = Some(0);
        assert_ne!(coalescing_key(&zero_threads), coalescing_key(&base));
    }

    #[test]
    fn effective_budget_splits_cores_and_clamps() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let (concurrency, per_request) = BatchConfig::default().effective(3);
        assert_eq!(concurrency, cores.min(3));
        assert_eq!(per_request, (cores / concurrency).max(1));

        let (concurrency, per_request) = BatchConfig::new()
            .max_concurrent(2)
            .threads_per_request(3)
            .effective(8);
        assert_eq!(concurrency, 2, "explicit max_concurrent is binding");
        assert_eq!(per_request, 3);

        // Zero-valued knobs are lifted to 1, and an empty batch still
        // resolves to a sane (1, ≥1) budget.
        let config = BatchConfig::new().max_concurrent(0).threads_per_request(0);
        assert_eq!(config.max_concurrent, Some(1));
        assert_eq!(config.threads_per_request, Some(1));
        let (concurrency, per_request) = BatchConfig::default().effective(0);
        assert_eq!(concurrency, 1);
        assert!(per_request >= 1);
    }

    #[test]
    fn duplicates_share_one_search() {
        let service = MappingService::new();
        let batch = vec![
            request(),
            request().threads(2), // same answer → same group
            request().seed(31),
            request(),
        ];
        let report = service.submit_batch_with(&batch, &BatchConfig::new().max_concurrent(2));
        assert_eq!(report.stats.requests, 4);
        assert_eq!(report.stats.unique_requests, 2);
        assert_eq!(report.stats.coalesced_requests, 2);
        assert_eq!(report.responses.len(), 4);
        assert_eq!(report.leader_positions, vec![0, 2]);

        let first = report.responses[0].as_ref().unwrap();
        for duplicate in [1usize, 3] {
            let response = report.responses[duplicate].as_ref().unwrap();
            assert_eq!(response.pareto_front, first.pareto_front);
            assert_eq!(response.best_by_objective, first.best_by_objective);
            // Clone of the leader's response: the search ran once, so the
            // duplicate carries the leader's accounting verbatim.
            assert_eq!(response.stats, first.stats);
        }
        assert_ne!(
            report.responses[2].as_ref().unwrap().pareto_front,
            first.pareto_front,
            "distinct seeds must not coalesce"
        );
    }

    #[test]
    fn errors_stay_per_group() {
        let service = MappingService::new();
        let bad = MappingRequest::new("no_such_model", "dual_test");
        let batch = vec![request(), bad.clone(), bad];
        let report = service.submit_batch_with(&batch, &BatchConfig::default());
        assert!(report.responses[0].is_ok());
        assert!(matches!(
            report.responses[1],
            Err(RuntimeError::UnknownModel { .. })
        ));
        assert!(matches!(
            report.responses[2],
            Err(RuntimeError::UnknownModel { .. })
        ));
        assert_eq!(report.stats.unique_requests, 2);
    }

    #[test]
    fn empty_batch_is_empty() {
        let service = MappingService::new();
        let report = service.submit_batch_with(&[], &BatchConfig::default());
        assert!(report.responses.is_empty());
        assert_eq!(report.stats.requests, 0);
        assert_eq!(report.stats.unique_requests, 0);
    }
}
