//! The mapping service: requests in, Pareto fronts out.
//!
//! [`MappingService`] is the long-lived object a deployment-planning
//! system holds on to. A [`MappingRequest`] names a model preset and a
//! platform preset, the objective weights and constraints, and a search
//! budget; [`MappingService::submit`] resolves the presets through the
//! registries, obtains (or reuses) the evaluator for the pair, and runs a
//! cache-backed, rayon-parallel evolutionary search. The response carries
//! the feasible Pareto front plus [`RequestStats`] — evaluations spent,
//! cache traffic, wall time — so callers can observe the service warming
//! up: the first request for a workload pays for its evaluations, repeats
//! are answered from the [`EvalCache`] at memory speed.
//!
//! Everything is deterministic per request: the same request (including
//! its seed) returns the same Pareto front whether served cold, warm, on
//! one thread or on many.

use crate::cache::{CacheStats, EvalCache};
use crate::error::RuntimeError;
use crate::pipeline::{PipelineStats, RequestPipeline, StageMicros};
use crate::registry::ModelRegistry;
use crate::response_cache::{ResponseCache, ResponseCacheStats, DEFAULT_RESPONSE_CACHE_ENTRIES};
use crate::telemetry::{ServiceTelemetry, ServingMetrics, TelemetryConfig, TenantMetrics};
use crate::warmstart::{EliteArchive, SurrogateRanker};
use mnc_core::{
    fingerprint_serialized, Constraints, Evaluator, EvaluatorBuilder, ObjectiveWeights,
    StableHasher,
};
use mnc_mpsoc::{Platform, PlatformRegistry};
use mnc_optim::{EvaluatedConfig, Genome, MutationConfig, SearchConfig, SelectionStrategy};
use mnc_telemetry::{render_prometheus, LatencySummary, MetricKey, MetricsSnapshot, RequestTrace};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on memoised evaluators: each pins a network, platform,
/// accuracy model and validation set, so the pool is bounded like the
/// evaluation cache (LRU eviction; in-flight requests keep their
/// evaluator alive through the `Arc`).
const MAX_POOLED_EVALUATORS: usize = 64;

/// The evaluator pool: fingerprint-keyed entries plus recency order
/// (front = least recently used). Hits reposition the key at the back, so
/// a hot model/platform shape survives arbitrarily many other shapes
/// passing through — under the previous FIFO order it was evicted by
/// insertion age even while in heavy rotation.
#[derive(Debug, Default)]
struct EvaluatorPool {
    entries: HashMap<u64, (Arc<Evaluator>, u64)>,
    order: VecDeque<u64>,
}

impl EvaluatorPool {
    /// Looks up a pooled evaluator, marking it most recently used.
    fn get(&mut self, key: u64) -> Option<(Arc<Evaluator>, u64)> {
        let (evaluator, fingerprint) = self.entries.get(&key)?;
        let found = (Arc::clone(evaluator), *fingerprint);
        self.touch(key);
        Some(found)
    }

    /// Moves `key` to the most-recently-used end (O(pool size), which is
    /// capped at [`MAX_POOLED_EVALUATORS`] — far cheaper than rebuilding
    /// an evaluator).
    fn touch(&mut self, key: u64) {
        if let Some(position) = self.order.iter().position(|&k| k == key) {
            self.order.remove(position);
        }
        self.order.push_back(key);
    }

    /// Inserts a freshly built evaluator, evicting least-recently-used
    /// entries beyond the bound. If a concurrent request built the same
    /// evaluator first, the resident one wins (both are equivalent, but
    /// sharing maximises `Arc` reuse).
    fn insert(
        &mut self,
        key: u64,
        evaluator: Arc<Evaluator>,
        fingerprint: u64,
    ) -> (Arc<Evaluator>, u64) {
        if let Some(existing) = self.get(key) {
            return existing;
        }
        while self.entries.len() >= MAX_POOLED_EVALUATORS {
            let Some(lru) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&lru);
        }
        self.entries
            .insert(key, (Arc::clone(&evaluator), fingerprint));
        self.order.push_back(key);
        (evaluator, fingerprint)
    }
}

/// A mapping query: which workload, which board, what to optimise, how
/// hard to search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingRequest {
    /// Model preset name (see [`ModelRegistry::names`]).
    pub model: String,
    /// Platform preset name (see [`PlatformRegistry::names`]).
    pub platform: String,
    /// Objective weights of eq. 16.
    pub weights: ObjectiveWeights,
    /// Deployment constraints of eq. 15.
    pub constraints: Constraints,
    /// Synthetic validation samples for the accuracy/exit model.
    pub validation_samples: usize,
    /// Search generations.
    pub generations: usize,
    /// Population per generation.
    pub population_size: usize,
    /// Elite-selection strategy.
    pub selection: SelectionStrategy,
    /// Search seed (same seed → same front).
    pub seed: u64,
    /// Hard cap on evaluations (spread over generations).
    pub max_evaluations: Option<usize>,
    /// Stop early after this many generations without improvement.
    pub stall_generations: Option<usize>,
    /// Worker threads for population evaluation (`None` = all cores).
    pub threads: Option<usize>,
    /// Soft wall-clock deadline for answering this request, in
    /// milliseconds from submission (`None` = unbounded, today's
    /// behaviour). The pipeline's fast path stamps the absolute deadline
    /// into the search ticket; a search still running at the deadline
    /// stops at the next generation boundary and answers with the
    /// best-so-far front (`RequestStats::partial`), while a ticket whose
    /// deadline expires before its search starts is answered
    /// [`RuntimeError::DeadlineExceeded`] without running one. Answer
    /// content for requests that complete in time is unaffected, so the
    /// deadline is normalised out of coalescing and response-cache keys.
    pub deadline_ms: Option<u64>,
    /// Seed the search from surrogate-ranked Pareto elites of earlier
    /// same-model requests (see [`crate::warmstart`]). Off by default:
    /// a cold request's response depends only on the request itself,
    /// while a warm-started response additionally depends on what the
    /// service answered before.
    pub warm_start: bool,
    /// The tenant submitting this request (`None` = the anonymous
    /// default tenant). Identity only: the answer content is
    /// tenant-independent, so the tenant is normalised out of
    /// coalescing and response-cache keys — it matters to the serving
    /// layer's scheduler (weighted-fair queueing, token-bucket budgets)
    /// and per-tenant metrics, never to the front.
    pub tenant: Option<String>,
    /// Requested scheduling priority, higher = more urgent (`None` =
    /// the default, 0). The serving layer clamps it to the tenant's
    /// configured ceiling; a higher-priority arrival may preempt a
    /// running lower-priority search at its next generation boundary
    /// (the paused search later resumes bit-identically). Like
    /// [`MappingRequest::tenant`], priority never affects answer
    /// content.
    pub priority: Option<u8>,
}

impl MappingRequest {
    /// A request with the service defaults: NSGA-II-style selection, a
    /// medium budget (20 generations × 24 candidates), all cores.
    pub fn new(model: impl Into<String>, platform: impl Into<String>) -> Self {
        MappingRequest {
            model: model.into(),
            platform: platform.into(),
            weights: ObjectiveWeights::default(),
            constraints: Constraints::default(),
            validation_samples: 2000,
            generations: 20,
            population_size: 24,
            selection: SelectionStrategy::ParetoCrowding,
            seed: 2023,
            max_evaluations: None,
            stall_generations: None,
            threads: None,
            deadline_ms: None,
            warm_start: false,
            tenant: None,
            priority: None,
        }
    }

    /// Sets the objective weights.
    #[must_use]
    pub fn weights(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the deployment constraints.
    #[must_use]
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the validation-set size.
    #[must_use]
    pub fn validation_samples(mut self, samples: usize) -> Self {
        self.validation_samples = samples;
        self
    }

    /// Sets the number of generations.
    #[must_use]
    pub fn generations(mut self, generations: usize) -> Self {
        self.generations = generations;
        self
    }

    /// Sets the population size.
    #[must_use]
    pub fn population_size(mut self, population_size: usize) -> Self {
        self.population_size = population_size;
        self
    }

    /// Sets the elite-selection strategy.
    #[must_use]
    pub fn selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the search seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the total number of evaluations.
    #[must_use]
    pub fn max_evaluations(mut self, budget: usize) -> Self {
        self.max_evaluations = Some(budget);
        self
    }

    /// Enables stall-based early stopping.
    #[must_use]
    pub fn stall_generations(mut self, window: usize) -> Self {
        self.stall_generations = Some(window);
        self
    }

    /// Pins the number of evaluation threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets a soft wall-clock deadline, in milliseconds from submission:
    /// the search stops at the first generation boundary past it and
    /// answers with the best-so-far front marked
    /// [`RequestStats::partial`] (a request that finishes in time
    /// answers bit-identically to the undeadlined one).
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Names the tenant submitting this request. See
    /// [`MappingRequest::tenant`].
    #[must_use]
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Requests a scheduling priority (higher = more urgent; clamped to
    /// the tenant's configured ceiling by the serving layer). See
    /// [`MappingRequest::priority`].
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Opts in to the surrogate warm start: the initial population is
    /// seeded from the archived Pareto elites of earlier requests for the
    /// same model (same platform first, then neighbouring platforms with
    /// the same stage count), re-ranked by the target platform's
    /// `mnc_predictor` surrogate. With a stall window set, warm-started
    /// requests reach a front no worse than the cold search in strictly
    /// fewer evaluations once the archive holds relevant elites.
    ///
    /// Note the trade: a warm-started response depends on what the
    /// service answered before, so the bit-identical-replay guarantee
    /// applies only to requests with `warm_start` off.
    #[must_use]
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// The search configuration this request describes.
    pub fn search_config(&self) -> SearchConfig {
        SearchConfig {
            generations: self.generations,
            population_size: self.population_size,
            elite_fraction: 0.25,
            crossover_rate: 0.7,
            mutation: MutationConfig::default(),
            selection: self.selection,
            seed: self.seed,
            parallel: true,
            threads: self.threads,
            max_evaluations: self.max_evaluations,
            stall_generations: self.stall_generations,
            warm_start: self.warm_start,
        }
    }

    /// Fingerprint of the evaluator-defining part of the request (model,
    /// platform, validation size, constraints, weights — not the search
    /// budget), used to memoise evaluators across requests. Computed by
    /// the pipeline's Fingerprint stage.
    pub(crate) fn evaluator_key(&self) -> u64 {
        let mut hasher = StableHasher::new();
        hasher.write_str(&self.model);
        hasher.write_str(&self.platform);
        hasher.write_usize(self.validation_samples);
        hasher.write_u64(fingerprint_serialized(&self.weights));
        hasher.write_u64(fingerprint_serialized(&self.constraints));
        hasher.finish()
    }
}

/// Per-request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Configurations the search examined (memoised, cached or fresh).
    pub evaluations: usize,
    /// Evaluations that reached the evaluator (the rest were served by
    /// the search's within-run memo).
    pub evaluations_performed: usize,
    /// Scheduled evaluations answered by the search's within-run memo
    /// (elite replays, duplicate children): always
    /// `evaluations - evaluations_performed`.
    pub memo_hits: usize,
    /// Warm-start seed genomes injected into the initial population
    /// (0 unless the request set [`MappingRequest::warm_start`]).
    pub warm_start_seeds: usize,
    /// Generations actually run.
    pub generations_run: usize,
    /// Whether the search stopped before its generation count.
    pub early_stopped: bool,
    /// Whether the front is a deadline/cancellation partial: the search
    /// was interrupted at a generation boundary and the response carries
    /// the best-so-far front (a bit-identical prefix of the full run)
    /// rather than the full-budget answer. Partial responses are never
    /// stored in the response cache.
    pub partial: bool,
    /// Cache hits while serving this request.
    pub cache_hits: u64,
    /// Cache misses (fresh evaluations) while serving this request.
    pub cache_misses: u64,
    /// Cache hits served by waiting on a concurrent in-flight evaluation
    /// of the same key (a subset of [`RequestStats::cache_hits`]):
    /// duplicate evaluations this request avoided.
    pub cache_coalesced: u64,
    /// Wall time spent serving the request, in milliseconds.
    pub elapsed_ms: f64,
    /// Wall time per pipeline stage, microseconds, indexed by
    /// [`crate::pipeline::PipelineStage::index`]. For a coalesced
    /// duplicate this is a clone of the group leader's trace (the
    /// duplicate ran no stages of its own); batch-level grouping time is
    /// reported in the service-lifetime [`PipelineStats`], not here.
    pub stage_micros: StageMicros,
}

impl RequestStats {
    /// Fraction of this request's lookups served from the cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Total wall time across the per-request stage trace, microseconds
    /// (≤ `elapsed_ms × 1000`; the difference is inter-stage overhead).
    pub fn stage_micros_total(&self) -> f64 {
        self.stage_micros.iter().sum()
    }
}

/// The answer to a [`MappingRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingResponse {
    /// The model preset that was mapped.
    pub model: String,
    /// The platform preset it was mapped onto.
    pub platform: String,
    /// Feasible Pareto front over (average energy, average latency).
    pub pareto_front: Vec<EvaluatedConfig>,
    /// The feasible configuration minimising the scalar objective.
    pub best_by_objective: Option<EvaluatedConfig>,
    /// Accounting for this request.
    pub stats: RequestStats,
}

/// Service-wide construction knobs beyond the telemetry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Observability knobs (trace rings, generation streaming).
    pub telemetry: TelemetryConfig,
    /// Bound on the response cache behind the pipeline's fast path, in
    /// entries; 0 disables it, so every request runs its search (the
    /// pre-split behaviour — what benchmarks of the evaluation cache
    /// want).
    pub response_cache_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            telemetry: TelemetryConfig::default(),
            response_cache_entries: DEFAULT_RESPONSE_CACHE_ENTRIES,
        }
    }
}

/// A long-lived mapping service with shared registries, evaluator pool and
/// evaluation cache.
#[derive(Debug)]
pub struct MappingService {
    models: ModelRegistry,
    platforms: PlatformRegistry,
    cache: Arc<EvalCache>,
    evaluators: Mutex<EvaluatorPool>,
    /// Evaluator keys some thread is currently building (validation-set
    /// generation is the slow part of a cold request); concurrent requests
    /// for the same shape wait here instead of each building their own.
    building: Mutex<HashSet<u64>>,
    building_done: Condvar,
    /// Pareto elites of answered requests, the warm-start seed pool.
    elites: EliteArchive,
    /// Surrogate rankers memoised per platform preset (training one takes
    /// longer than ranking with it by orders of magnitude).
    rankers: Mutex<HashMap<String, Arc<SurrogateRanker>>>,
    /// Previously answered cold requests, replayed by the pipeline's
    /// fast path (see [`crate::response_cache`]).
    responses: ResponseCache,
    /// The service's telemetry hub: metric registry, pre-wired pipeline
    /// handles and the trace rings.
    telemetry: ServiceTelemetry,
}

/// Exclusive claim on building one evaluator shape. Dropping it (build
/// finished *or* failed) releases the key and wakes waiters, which
/// re-check the pool and, if the build failed, retry it themselves.
struct BuildClaim<'a> {
    building: &'a Mutex<HashSet<u64>>,
    done: &'a Condvar,
    key: u64,
}

impl Drop for BuildClaim<'_> {
    fn drop(&mut self) {
        let mut building = self
            .building
            .lock()
            .expect("evaluator build set lock never poisoned");
        building.remove(&self.key);
        drop(building);
        self.done.notify_all();
    }
}

impl MappingService {
    /// Creates a service with a fresh cache and default telemetry
    /// (trace retention and search-generation streaming on).
    pub fn new() -> Self {
        Self::with_cache(Arc::new(EvalCache::new()))
    }

    /// Creates a service over an existing (possibly shared) cache.
    pub fn with_cache(cache: Arc<EvalCache>) -> Self {
        Self::with_cache_and_telemetry(cache, TelemetryConfig::default())
    }

    /// Creates a service with a fresh cache and the given telemetry
    /// configuration.
    pub fn with_telemetry_config(config: TelemetryConfig) -> Self {
        Self::with_cache_and_telemetry(Arc::new(EvalCache::new()), config)
    }

    /// Creates a service over an existing cache with the given telemetry
    /// configuration.
    pub fn with_cache_and_telemetry(cache: Arc<EvalCache>, config: TelemetryConfig) -> Self {
        Self::with_cache_and_config(
            cache,
            ServiceConfig {
                telemetry: config,
                ..ServiceConfig::default()
            },
        )
    }

    /// Creates a service with a fresh cache and the given
    /// [`ServiceConfig`].
    pub fn with_config(config: ServiceConfig) -> Self {
        Self::with_cache_and_config(Arc::new(EvalCache::new()), config)
    }

    /// Creates a service over an existing cache with the given
    /// [`ServiceConfig`].
    pub fn with_cache_and_config(cache: Arc<EvalCache>, config: ServiceConfig) -> Self {
        MappingService {
            models: ModelRegistry::new(),
            platforms: PlatformRegistry::new(),
            cache,
            evaluators: Mutex::new(EvaluatorPool::default()),
            building: Mutex::new(HashSet::new()),
            building_done: Condvar::new(),
            elites: EliteArchive::new(),
            rankers: Mutex::new(HashMap::new()),
            responses: ResponseCache::new(config.response_cache_entries),
            telemetry: ServiceTelemetry::new(config.telemetry),
        }
    }

    /// Creates a service whose elite archive is pre-loaded from a JSON
    /// snapshot written by [`MappingService::save_archive`] — the
    /// restart path: warm-start requests seed from the previous
    /// process's elites instead of starting from an empty archive.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] when the file cannot be
    /// read or does not hold a valid archive snapshot.
    pub fn with_archive_from(path: &Path) -> Result<Self, RuntimeError> {
        let service = MappingService::new();
        service.load_archive(path)?;
        Ok(service)
    }

    /// Loads elite genomes from a JSON snapshot into the archive (merged
    /// with whatever the archive already holds; duplicates are dropped).
    /// Returns the number of genomes the snapshot carried.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] for unreadable files or
    /// malformed snapshots.
    pub fn load_archive(&self, path: &Path) -> Result<usize, RuntimeError> {
        self.elites.load_from(path)
    }

    /// Crash-tolerant variant of [`MappingService::load_archive`] for
    /// server startup: a missing snapshot is a cold start and a corrupt
    /// one (e.g. a torn write left by a crash) is renamed to
    /// `<name>.corrupt` and skipped, so the service always comes up
    /// serviceable. See [`EliteArchive::load_or_quarantine`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] only when quarantining the
    /// corrupt file itself fails — never for the corruption as such.
    pub fn restore_archive(&self, path: &Path) -> Result<crate::ArchiveLoad, RuntimeError> {
        self.elites.load_or_quarantine(path)
    }

    /// Persists the elite archive to a JSON snapshot that
    /// [`MappingService::load_archive`] (or the `mnc-server`
    /// `--archive-dir` flag) restores after a restart. Returns the number
    /// of genomes written.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] when the file cannot be
    /// written.
    pub fn save_archive(&self, path: &Path) -> Result<usize, RuntimeError> {
        self.elites.snapshot_to(path)
    }

    /// The model catalogue.
    pub fn models(&self) -> &ModelRegistry {
        &self.models
    }

    /// The platform catalogue.
    pub fn platforms(&self) -> &PlatformRegistry {
        &self.platforms
    }

    /// Service-lifetime cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The warm-start elite archive (Pareto elites of answered requests).
    pub fn elite_archive(&self) -> &EliteArchive {
        &self.elites
    }

    /// The fast-path response cache.
    pub(crate) fn responses(&self) -> &ResponseCache {
        &self.responses
    }

    /// Service-lifetime response-cache counters (the cache behind
    /// fast-path answers).
    pub fn response_cache_stats(&self) -> ResponseCacheStats {
        self.responses.stats()
    }

    /// The pre-registered serving-layer metric handles (connection and
    /// queue gauges, shed/coalesce counters) a front-end drives. Values
    /// land in the same registry as the pipeline's own counters, so they
    /// show up in [`MappingService::metrics_snapshot`],
    /// [`MappingService::prometheus_text`] and
    /// [`MappingService::pipeline_stats`].
    pub fn serving_metrics(&self) -> ServingMetrics {
        self.telemetry.serving.clone()
    }

    /// The labeled per-tenant metric handles for `tenant`, minted on
    /// first use. Repeated calls for one tenant return clones of the
    /// same atomics, so a serving layer caches one [`TenantMetrics`]
    /// per tenant and drives plain atomics on its hot path. The values
    /// appear in [`MappingService::metrics_snapshot`] and
    /// [`MappingService::prometheus_text`] with a `tenant="…"` label.
    pub fn tenant_metrics(&self, tenant: &str) -> TenantMetrics {
        self.telemetry.tenant_metrics(tenant)
    }

    /// The staged request pipeline over this service — the single serving
    /// path [`MappingService::submit`], [`MappingService::submit_batch`]
    /// and the wire front-end all drive.
    pub fn pipeline(&self) -> RequestPipeline<'_> {
        RequestPipeline::new(self)
    }

    /// Service-lifetime per-stage pipeline counters — a view derived from
    /// the metric registry (see [`MappingService::metrics_snapshot`] for
    /// the full registry including latency histograms).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.telemetry.pipeline_stats()
    }

    /// The telemetry hub (pre-wired metric handles, trace rings).
    pub(crate) fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// The telemetry configuration this service runs with.
    pub fn telemetry_config(&self) -> TelemetryConfig {
        *self.telemetry.config()
    }

    /// A point-in-time snapshot of every metric the service keeps:
    /// pipeline stage histograms and counters, request/batch histograms,
    /// cache counters, archive and trace-ring gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.telemetry.metrics_snapshot();
        self.cache.record_metrics(&mut snapshot);
        let responses = self.responses.stats();
        snapshot.push_counter(
            MetricKey::plain("mnc_response_cache_hits_total"),
            responses.hits,
        );
        snapshot.push_counter(
            MetricKey::plain("mnc_response_cache_misses_total"),
            responses.misses,
        );
        snapshot.push_counter(
            MetricKey::plain("mnc_response_cache_insertions_total"),
            responses.insertions,
        );
        snapshot.push_counter(
            MetricKey::plain("mnc_response_cache_evictions_total"),
            responses.evictions,
        );
        snapshot.push_gauge(
            MetricKey::plain("mnc_response_cache_entries"),
            responses.entries as f64,
        );
        snapshot.push_gauge(
            MetricKey::plain("mnc_archive_genomes"),
            self.elites.len() as f64,
        );
        snapshot
    }

    /// [`MappingService::metrics_snapshot`] rendered as Prometheus text
    /// exposition (`text/plain; version=0.0.4`).
    pub fn prometheus_text(&self) -> String {
        render_prometheus(&self.metrics_snapshot())
    }

    /// Per-stage latency digests (count, p50/p99/p999 bounds), in
    /// pipeline-stage order.
    pub fn stage_latency(&self) -> Vec<LatencySummary> {
        self.telemetry.stage_latency()
    }

    /// End-to-end request latency digest.
    pub fn request_latency(&self) -> LatencySummary {
        self.telemetry.request_latency()
    }

    /// The most recent retained request traces, oldest first.
    pub fn recent_traces(&self) -> Vec<Arc<RequestTrace>> {
        self.telemetry.traces().recent()
    }

    /// Retained slow-request traces (total time over the configured
    /// threshold), oldest first.
    pub fn slow_traces(&self) -> Vec<Arc<RequestTrace>> {
        self.telemetry.traces().slow()
    }

    /// The slowest request trace still retained in either ring.
    pub fn slowest_trace(&self) -> Option<Arc<RequestTrace>> {
        self.telemetry.slowest_trace()
    }

    /// The memoised surrogate ranker for one platform preset, training it
    /// on first use. Training is deterministic (fixed dataset seed), so
    /// every service instance ranks identically.
    fn ranker_for(
        &self,
        name: &str,
        platform: &Platform,
    ) -> Result<Arc<SurrogateRanker>, RuntimeError> {
        if let Some(found) = self
            .rankers
            .lock()
            .expect("ranker pool lock never poisoned")
            .get(name)
        {
            return Ok(Arc::clone(found));
        }
        // Train outside the lock: two concurrent trainings produce equal
        // models (deterministic dataset), the first insert wins.
        let ranker = Arc::new(SurrogateRanker::train(platform)?);
        let mut rankers = self
            .rankers
            .lock()
            .expect("ranker pool lock never poisoned");
        Ok(Arc::clone(
            rankers.entry(name.to_string()).or_insert(ranker),
        ))
    }

    /// Gathers and surrogate-ranks warm-start seeds for one request:
    /// archived elites of the same model (same platform first, then
    /// neighbouring platforms with the same stage count), best-predicted
    /// first, truncated to half the population so the search keeps room
    /// for exploration.
    pub(crate) fn warm_start_seeds(
        &self,
        request: &MappingRequest,
        evaluator: &Evaluator,
    ) -> Result<Vec<Arc<Genome>>, RuntimeError> {
        let platform = evaluator.platform();
        let mut seeds = self.elites.seeds_for(
            &request.model,
            &request.platform,
            platform.num_compute_units(),
        );
        if seeds.len() > 1 {
            let ranker = self.ranker_for(&request.platform, platform)?;
            ranker.rank(&mut seeds, evaluator.network(), platform);
        }
        seeds.truncate((request.population_size / 2).max(1));
        Ok(seeds)
    }

    /// Resolves (building or reusing) the evaluator a request needs —
    /// the test-friendly wrapper over
    /// [`MappingService::resolve_evaluator_keyed`] that hashes the key
    /// itself.
    #[cfg(test)]
    fn resolve_evaluator(
        &self,
        request: &MappingRequest,
    ) -> Result<(Arc<Evaluator>, u64), RuntimeError> {
        self.resolve_evaluator_keyed(request, request.evaluator_key())
            .map(|(evaluator, fingerprint, _)| (evaluator, fingerprint))
    }

    /// Resolves (building or reusing) the evaluator a request needs under
    /// a pre-computed pool key (the pipeline's Fingerprint stage already
    /// hashed it), returning it together with its memoised fingerprint —
    /// so warm requests skip the fingerprint serialization pass too — and
    /// whether this call performed the build (`false` = served from the
    /// pool or a concurrent builder).
    pub(crate) fn resolve_evaluator_keyed(
        &self,
        request: &MappingRequest,
        key: u64,
    ) -> Result<(Arc<Evaluator>, u64, bool), RuntimeError> {
        if let Some((evaluator, fingerprint)) = self
            .evaluators
            .lock()
            .expect("evaluator pool lock never poisoned")
            .get(key)
        {
            return Ok((evaluator, fingerprint, false));
        }
        // Claim the build so concurrent requests for the same shape don't
        // each generate a validation set only to discard all but one.
        let _claim = loop {
            let mut building = self
                .building
                .lock()
                .expect("evaluator build set lock never poisoned");
            if building.insert(key) {
                break BuildClaim {
                    building: &self.building,
                    done: &self.building_done,
                    key,
                };
            }
            // Another thread is building this shape: wait for it, then
            // serve from the pool — or loop to claim the key ourselves if
            // its build failed.
            drop(
                self.building_done
                    .wait(building)
                    .expect("evaluator build set lock never poisoned"),
            );
            if let Some((evaluator, fingerprint)) = self
                .evaluators
                .lock()
                .expect("evaluator pool lock never poisoned")
                .get(key)
            {
                return Ok((evaluator, fingerprint, false));
            }
        };
        // The builder may have finished between our pool miss and the
        // claim; re-check before paying for the build.
        if let Some((evaluator, fingerprint)) = self
            .evaluators
            .lock()
            .expect("evaluator pool lock never poisoned")
            .get(key)
        {
            return Ok((evaluator, fingerprint, false));
        }
        // Build outside the pool lock: evaluator construction generates
        // the validation set and is the slow part of a cold request.
        let network = self.models.build(&request.model)?;
        let platform = self
            .platforms
            .build(&request.platform)
            .map_err(|error| match error {
                mnc_mpsoc::MpsocError::UnknownPlatform { name, available } => {
                    RuntimeError::UnknownPlatform { name, available }
                }
                other => RuntimeError::Mpsoc(other),
            })?;
        let evaluator = Arc::new(
            EvaluatorBuilder::new(network, platform)
                .validation_samples(request.validation_samples)
                .constraints(request.constraints)
                .objective_weights(request.weights)
                .build()?,
        );
        let fingerprint = evaluator.fingerprint();
        let mut pool = self
            .evaluators
            .lock()
            .expect("evaluator pool lock never poisoned");
        let (evaluator, fingerprint) = pool.insert(key, evaluator, fingerprint);
        Ok((evaluator, fingerprint, true))
    }

    /// Answers one mapping request by driving the staged
    /// [`RequestPipeline`] — the fast path (Normalize → Fingerprint →
    /// Coalesce → CacheLookup) composed with the slow path
    /// (ResolveEvaluator → WarmStartSeed → Search → ArchiveFeedback) —
    /// the same path [`MappingService::submit_batch`] and the wire
    /// front-end use. A repeated identical cold request is answered on
    /// the fast path by replaying the stored response without running a
    /// search.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown presets, an invalid request, or an
    /// internal evaluation failure (which indicates an inconsistency, not
    /// an infeasible workload — infeasible candidates simply drop off the
    /// Pareto front).
    pub fn submit(&self, request: &MappingRequest) -> Result<MappingResponse, RuntimeError> {
        self.pipeline().run(request)
    }

    /// Answers a batch of requests with the default [`BatchConfig`]:
    /// identical requests are deduplicated onto one search and distinct
    /// requests run concurrently on a scoped worker pool sharing the
    /// machine's cores (see [`MappingService::submit_batch_with`] in
    /// [`crate::scheduler`]). Responses come back in request order and are
    /// bit-identical to serving each request through
    /// [`MappingService::submit`].
    pub fn submit_batch(
        &self,
        requests: &[MappingRequest],
    ) -> Vec<Result<MappingResponse, RuntimeError>> {
        self.submit_batch_with(requests, &crate::scheduler::BatchConfig::default())
            .responses
    }
}

impl Default for MappingService {
    fn default() -> Self {
        MappingService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request() -> MappingRequest {
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(400)
            .generations(3)
            .population_size(8)
    }

    #[test]
    fn submit_returns_a_feasible_front() {
        let service = MappingService::new();
        let response = service.submit(&small_request()).unwrap();
        assert!(!response.pareto_front.is_empty());
        assert!(response.best_by_objective.is_some());
        assert_eq!(response.stats.evaluations, 24);
        assert!(response.pareto_front.iter().all(|c| c.result.feasible));
    }

    #[test]
    fn unknown_presets_are_rejected() {
        let service = MappingService::new();
        let bad_model = MappingRequest::new("resnet", "dual_test");
        assert!(matches!(
            service.submit(&bad_model),
            Err(RuntimeError::UnknownModel { .. })
        ));
        let bad_platform = MappingRequest::new("tiny_cnn_cifar10", "tpu");
        assert!(matches!(
            service.submit(&bad_platform),
            Err(RuntimeError::UnknownPlatform { .. })
        ));
    }

    #[test]
    fn invalid_budgets_are_rejected_as_requests() {
        let service = MappingService::new();
        let zero_samples = MappingRequest {
            validation_samples: 0,
            ..small_request()
        };
        assert!(matches!(
            service.submit(&zero_samples),
            Err(RuntimeError::InvalidRequest { .. })
        ));
        let tiny_population = MappingRequest {
            population_size: 1,
            ..small_request()
        };
        assert!(matches!(
            service.submit(&tiny_population),
            Err(RuntimeError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn evaluators_are_pooled_across_requests() {
        let service = MappingService::new();
        service.submit(&small_request()).unwrap();
        service.submit(&small_request().seed(77)).unwrap();
        // Same evaluator-defining parameters → one pooled evaluator.
        assert_eq!(service.evaluators.lock().unwrap().entries.len(), 1);
        service
            .submit(&small_request().validation_samples(401))
            .unwrap();
        assert_eq!(service.evaluators.lock().unwrap().entries.len(), 2);
    }

    #[test]
    fn max_evaluations_caps_the_archive() {
        let service = MappingService::new();
        let response = service
            .submit(&small_request().max_evaluations(11))
            .unwrap();
        assert_eq!(response.stats.evaluations, 11);
        assert!(response.stats.early_stopped);
    }

    #[test]
    fn request_serializes_round_trip() {
        let request = small_request()
            .max_evaluations(100)
            .threads(2)
            .deadline_ms(250)
            .tenant("acme")
            .priority(3);
        let json = serde_json::to_string(&request).unwrap();
        let back: MappingRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(request, back);

        // Seeds above i64::MAX must survive JSON exactly — "same seed →
        // same front" would silently break otherwise.
        let request = small_request().seed(u64::MAX - 1);
        let back: MappingRequest =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn evaluator_pool_is_bounded() {
        let service = MappingService::new();
        for i in 0..(MAX_POOLED_EVALUATORS + 8) {
            let request = small_request().validation_samples(50 + i);
            service.resolve_evaluator(&request).unwrap();
        }
        let pool = service.evaluators.lock().unwrap();
        assert_eq!(pool.entries.len(), MAX_POOLED_EVALUATORS);
        assert_eq!(pool.order.len(), MAX_POOLED_EVALUATORS);
    }

    #[test]
    fn concurrent_resolves_share_one_evaluator_build() {
        let service = MappingService::new();
        let request = small_request();
        let evaluators: Vec<Arc<Evaluator>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| service.resolve_evaluator(&request).unwrap().0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The build-claim serialises construction, so every thread holds
        // the *same* pooled evaluator, not an equivalent duplicate.
        for evaluator in &evaluators[1..] {
            assert!(Arc::ptr_eq(evaluator, &evaluators[0]));
        }
        assert_eq!(service.evaluators.lock().unwrap().entries.len(), 1);
    }

    #[test]
    fn evaluator_pool_evicts_least_recently_used() {
        // Regression: the pool used to evict by insertion order, so a hot
        // shape died once MAX_POOLED_EVALUATORS other shapes passed
        // through, however often it was being hit.
        let service = MappingService::new();
        let requests: Vec<MappingRequest> = (0..MAX_POOLED_EVALUATORS)
            .map(|i| small_request().validation_samples(50 + i))
            .collect();
        for request in &requests {
            service.resolve_evaluator(request).unwrap();
        }
        // Re-touch the oldest entry, then overflow the pool by one: the
        // touched entry must survive and the now-least-recently-used
        // second entry must go instead.
        service.resolve_evaluator(&requests[0]).unwrap();
        let overflow = small_request().validation_samples(50 + MAX_POOLED_EVALUATORS);
        service.resolve_evaluator(&overflow).unwrap();

        let pool = service.evaluators.lock().unwrap();
        assert_eq!(pool.entries.len(), MAX_POOLED_EVALUATORS);
        assert!(
            pool.entries.contains_key(&requests[0].evaluator_key()),
            "re-touched entry was evicted insertion-age-style"
        );
        assert!(
            !pool.entries.contains_key(&requests[1].evaluator_key()),
            "least-recently-used entry survived eviction"
        );
        assert!(pool.entries.contains_key(&overflow.evaluator_key()));
    }
}
