//! The staged request pipeline — the one serving path every front-end
//! drives.
//!
//! Before this module, the serving logic was interleaved across
//! `service.rs` (validation, evaluator pooling, warm-start plumbing,
//! response assembly) and `scheduler.rs` (coalescing, cross-request
//! parallelism): any new front-end — an HTTP server, a priority queue, a
//! deadline scheduler — would have had to re-implement half of it.
//! [`RequestPipeline`] makes the path explicit instead: an ordered
//! sequence of stages split into two tiers,
//!
//! ```text
//! fast path │ Normalize → Fingerprint → Coalesce → CacheLookup
//!           │                                        │ Answered ───► response
//!           │                                        │ Rejected ───► error
//!           ▼                                        ▼ NeedsSearch
//! slow path │ ResolveEvaluator → WarmStartSeed → Search → ArchiveFeedback
//! ```
//!
//! over a per-request context, so [`MappingService::submit`],
//! [`MappingService::submit_batch`] and the `mnc-wire`/`mnc-server` JSON
//! front-end all execute the *same* code in the *same* order.
//!
//! The **fast path** ([`RequestPipeline::fast_path`]) is pure and
//! bounded-latency — it validates, hashes and probes caches but never
//! builds an evaluator or runs a search, so an event-driven server can
//! run it on its reactor thread:
//!
//! * **Normalize** — reject malformed budgets and unknown presets before
//!   any expensive work, and derive the answer-neutral normalised form
//!   (thread count stripped) that coalescing and the response cache key
//!   on.
//! * **Fingerprint** — hash the answer-determining request content: the
//!   full-request coalescing key and the evaluator-defining key that
//!   indexes the evaluator pool.
//! * **Coalesce** — group identical requests so N duplicates run one
//!   search (a batch-level stage; a single request passes through and is
//!   merely counted).
//! * **CacheLookup** — probe the bounded
//!   [`ResponseCache`](crate::response_cache) of previously answered
//!   cold requests; a hit replays the stored response verbatim
//!   ([`FastPathOutcome::Answered`]) without ever touching the search
//!   pool.
//!
//! The outcome of the fast path is the typed seam between the tiers:
//! [`FastPathOutcome::Answered`], [`FastPathOutcome::Rejected`], or
//! [`FastPathOutcome::NeedsSearch`] carrying a [`SearchTicket`] that the
//! **slow path** ([`RequestPipeline::slow_path`]) redeems — on the same
//! thread (`submit`) or on a search worker (the reactor server):
//!
//! * **ResolveEvaluator** — resolve the evaluator (pooled or freshly
//!   built, build-claimed so concurrent cold requests share one
//!   construction) and splice the shared
//!   [`EvalCache`](crate::cache::EvalCache) in front of it.
//! * **WarmStartSeed** — when the request opts in, gather and
//!   surrogate-rank elite genomes from earlier answers.
//! * **Search** — run the evolutionary search.
//! * **ArchiveFeedback** — feed the Pareto elites back into the archive
//!   for future warm starts, store the response for future fast-path
//!   answers, and assemble the response.
//!
//! Every stage is timed and counted: each response's
//! [`RequestStats::stage_micros`](crate::service::RequestStats) carries
//! the per-request split, and the service-lifetime [`PipelineStats`]
//! (per-stage entered/error/busy counters plus coalescing, evaluator-pool
//! and archive totals) replaces the ad-hoc accounting that used to be
//! spread across the request path. The split is behaviour-preserving:
//! [`RequestPipeline::run`] is exactly `fast_path` composed with
//! `slow_path`, and responses stay bit-identical to serving the request
//! through the former single-tier pipeline (property-tested in
//! `tests/pipeline.rs`; cached answers replay the bit-identical stored
//! response, stats included, the way coalesced batch duplicates replay
//! their leader's).

use crate::cached::CachedEvaluator;
use crate::error::RuntimeError;
use crate::response_cache::ResponseKey;
use crate::scheduler::{normalized_for_coalescing, BatchConfig, BatchReport, BatchStats};
use crate::service::{MappingRequest, MappingResponse, MappingService, RequestStats};
use mnc_core::fingerprint_serialized;
use mnc_optim::{
    CancelToken, EvaluatedConfig, Genome, MappingSearch, PauseToken, SearchCheckpoint,
    SearchOutcome, SearchRun,
};
use mnc_telemetry::{saturating_nanos, GenerationBuffer, SpanRecorder};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The ordered stages of the serving path. The first four are the fast
/// path (pure, bounded latency — safe on a reactor thread); the rest are
/// the slow path a [`SearchTicket`] redeems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineStage {
    /// Request validation + answer-neutral normalisation.
    Normalize,
    /// Coalescing and evaluator-pool key derivation.
    Fingerprint,
    /// Duplicate-request grouping (batch-level; pass-through for one
    /// request).
    Coalesce,
    /// Response-cache probe: a previously answered identical cold
    /// request is replayed without touching the search pool.
    CacheLookup,
    /// Evaluator resolution (pool hit or claimed build) + evaluation-cache
    /// splice. First slow-path stage.
    ResolveEvaluator,
    /// Warm-start seed gathering and surrogate ranking (opt-in).
    WarmStartSeed,
    /// The evolutionary search itself.
    Search,
    /// Elite-archive feedback, response-cache store + response assembly.
    ArchiveFeedback,
}

/// Number of pipeline stages.
pub const STAGE_COUNT: usize = 8;

impl PipelineStage {
    /// Every stage, in execution order.
    pub const ALL: [PipelineStage; STAGE_COUNT] = [
        PipelineStage::Normalize,
        PipelineStage::Fingerprint,
        PipelineStage::Coalesce,
        PipelineStage::CacheLookup,
        PipelineStage::ResolveEvaluator,
        PipelineStage::WarmStartSeed,
        PipelineStage::Search,
        PipelineStage::ArchiveFeedback,
    ];

    /// Position of the stage in [`PipelineStage::ALL`] — the index used by
    /// [`RequestStats::stage_micros`](crate::service::RequestStats) and
    /// [`PipelineStats::stages`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case stage name (wire/JSON identifier).
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Normalize => "normalize",
            PipelineStage::Fingerprint => "fingerprint",
            PipelineStage::Coalesce => "coalesce",
            PipelineStage::CacheLookup => "cache_lookup",
            PipelineStage::ResolveEvaluator => "resolve_evaluator",
            PipelineStage::WarmStartSeed => "warm_start_seed",
            PipelineStage::Search => "search",
            PipelineStage::ArchiveFeedback => "archive_feedback",
        }
    }
}

/// Per-request wall time by stage, in microseconds, indexed by
/// [`PipelineStage::index`].
pub type StageMicros = [f64; STAGE_COUNT];

/// One request's in-flight stage bookkeeping: integer-nanosecond stage
/// durations (saturating — sub-microsecond stages are never floored to
/// zero, pathological durations never wrap) plus the optional span
/// recorder retaining the full trace.
#[derive(Debug)]
pub(crate) struct StageTrace {
    nanos: [u64; STAGE_COUNT],
    recorder: Option<SpanRecorder>,
}

impl StageTrace {
    fn new(recorder: Option<SpanRecorder>) -> Self {
        StageTrace {
            nanos: [0; STAGE_COUNT],
            recorder,
        }
    }

    /// A trace without span retention — what batch-level stages use.
    fn untraced() -> Self {
        StageTrace::new(None)
    }

    /// Accumulates one stage execution.
    fn record(&mut self, stage: PipelineStage, elapsed: Duration) {
        let nanos = saturating_nanos(elapsed);
        let slot = &mut self.nanos[stage.index()];
        *slot = slot.saturating_add(nanos);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.stage(stage.name(), elapsed);
        }
    }

    /// Records a decision event on the span, when one is being kept.
    /// The detail closure only runs when tracing is on.
    fn note(&mut self, label: &'static str, detail: impl FnOnce() -> String) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.event(label, detail());
        }
    }

    /// Attaches the search's generation stream to the span.
    fn generations(&mut self, events: Vec<mnc_telemetry::GenerationEvent>) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.generations(events);
        }
    }

    /// The microsecond view [`RequestStats::stage_micros`] reports,
    /// derived from the nanosecond truth.
    pub(crate) fn stage_micros(&self) -> StageMicros {
        std::array::from_fn(|index| self.nanos[index] as f64 / 1e3)
    }

    /// Detaches the span recorder so the pipeline can freeze it into a
    /// retained trace.
    fn take_recorder(&mut self) -> Option<SpanRecorder> {
        self.recorder.take()
    }
}

/// One stage's lifetime counters in a [`PipelineStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name ([`PipelineStage::name`]).
    pub stage: String,
    /// Times the stage was entered.
    pub entered: u64,
    /// Times the stage returned an error.
    pub errors: u64,
    /// Cumulative wall time spent inside the stage, microseconds. Stages
    /// running concurrently (batch leaders) each contribute their own
    /// time, so this can exceed elapsed wall time.
    pub busy_micros: u64,
}

/// A point-in-time snapshot of the service-lifetime pipeline counters —
/// the per-stage observability the wire front-end and the throughput
/// bench report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Per-stage counters, in [`PipelineStage::ALL`] order.
    pub stages: Vec<StageStats>,
    /// Requests that entered the per-request pipeline (batch leaders
    /// included; coalesced duplicates are not re-run and counted below).
    pub requests: u64,
    /// Batches served through [`RequestPipeline::run_batch`].
    pub batches: u64,
    /// Duplicate requests answered by cloning a coalesced group leader's
    /// response instead of running the pipeline again.
    pub coalesced_requests: u64,
    /// CacheLookup resolutions served by the evaluator pool.
    pub evaluator_pool_hits: u64,
    /// CacheLookup resolutions that built a fresh evaluator.
    pub evaluator_builds: u64,
    /// Warm-start seed genomes gathered (before population truncation).
    pub warm_seeds_gathered: u64,
    /// Searches run by the Search stage.
    pub searches_run: u64,
    /// Evaluations the searches scheduled (memo hits included).
    pub evaluations_scheduled: u64,
    /// Evaluations that reached an evaluator.
    pub evaluations_performed: u64,
    /// Elite genomes offered to the archive by ArchiveFeedback (before
    /// deduplication).
    pub elites_recorded: u64,
    /// Requests answered on the fast path (response-cache hit in
    /// CacheLookup) — no evaluator resolution, no search.
    pub fast_path_answered: u64,
    /// Requests refused by serving-layer admission control (answered as
    /// structured `Overloaded` wire errors, never enqueued).
    pub shed_requests: u64,
    /// Requests answered by joining an identical in-flight search at the
    /// serving layer instead of enqueueing their own.
    pub inflight_coalesced: u64,
    /// Tickets whose deadline expired before their search could start
    /// (e.g. while queued for a worker) — answered as structured
    /// `DeadlineExceeded` without running a search.
    pub deadline_misses: u64,
    /// Searches interrupted at a generation boundary by a deadline or a
    /// cancellation, answered with the best-so-far front
    /// (`RequestStats::partial`).
    pub partial_responses: u64,
    /// Running searches cancelled by the serving layer's watchdog
    /// (request deadline or per-job wall-clock cap).
    pub search_cancellations: u64,
}

impl PipelineStats {
    /// The snapshot of one stage, by stage.
    pub fn stage(&self, stage: PipelineStage) -> &StageStats {
        &self.stages[stage.index()]
    }
}

/// A request prepared by the Normalize + Fingerprint stages.
#[derive(Debug)]
struct PreparedRequest {
    config: mnc_optim::SearchConfig,
    evaluator_key: u64,
    /// The response-cache key, derived only when the request is eligible
    /// (cold, and the cache is enabled).
    response_key: Option<ResponseKey>,
}

/// What the fast path (Normalize → Fingerprint → Coalesce →
/// CacheLookup) decided about one request — the typed seam between the
/// reactor-safe tier and the search-pool tier.
#[derive(Debug)]
pub enum FastPathOutcome {
    /// An identical cold request was answered before: the stored
    /// response is replayed verbatim (stats included, the way coalesced
    /// batch duplicates replay their leader's). The search pool was
    /// never touched.
    Answered(Box<MappingResponse>),
    /// The request is valid but needs a search; redeem the ticket with
    /// [`RequestPipeline::slow_path`] — inline or on a worker thread.
    NeedsSearch(Box<SearchTicket>),
    /// The request failed validation in Normalize; no expensive stage
    /// ran.
    Rejected(RuntimeError),
}

/// A validated request on its way to the slow path: everything the
/// ResolveEvaluator → WarmStartSeed → Search → ArchiveFeedback stages
/// need, detached from the caller so it can cross onto a search worker
/// thread. Produced by [`RequestPipeline::fast_path`], consumed by
/// [`RequestPipeline::slow_path`]; the in-flight stage trace and request
/// clock ride along so the response's stage accounting spans both tiers.
#[derive(Debug)]
pub struct SearchTicket {
    request: MappingRequest,
    prepared: PreparedRequest,
    trace: StageTrace,
    started: Instant,
    /// Absolute deadline stamped from the request's `deadline_ms` at
    /// fast-path time, so queueing delay counts against the budget.
    deadline: Option<Instant>,
    /// The cancel token the slow path's search polls each generation; a
    /// serving layer clones it before dispatch so a watchdog can stop
    /// the search from outside.
    cancel: CancelToken,
}

impl SearchTicket {
    /// The request this ticket answers.
    pub fn request(&self) -> &MappingRequest {
        &self.request
    }

    /// The absolute deadline this ticket must answer by, stamped from
    /// [`MappingRequest::deadline_ms`] when the fast path admitted the
    /// request (`None` = unbounded).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the ticket's deadline has already passed. The slow path
    /// checks this at entry and answers
    /// [`RuntimeError::DeadlineExceeded`] without starting a search; a
    /// serving layer can check it to drop expired tickets while queued.
    pub fn expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// A handle to the ticket's cancel token: cancelling it stops the
    /// search at the next generation boundary, which then answers with
    /// its best-so-far partial front. This is what a serving-layer
    /// watchdog registers before handing the ticket to a worker.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The full-request coalescing fingerprint, when the request is
    /// response-cache eligible (cold): the key a serving layer can use
    /// to join identical in-flight searches.
    pub fn coalescing_fingerprint(&self) -> Option<u64> {
        self.prepared
            .response_key
            .as_ref()
            .map(|key| key.fingerprint)
    }

    /// The answer-neutral normalised request behind
    /// [`SearchTicket::coalescing_fingerprint`] — what a serving layer
    /// compares to confirm two tickets with equal fingerprints really
    /// are the same request (collision safety).
    pub fn normalized_request(&self) -> Option<&MappingRequest> {
        self.prepared
            .response_key
            .as_ref()
            .map(|key| &key.normalized)
    }
}

/// How one entry into the resumable slow path ended: finished, or
/// paused at a generation boundary awaiting
/// [`RequestPipeline::resume`].
#[derive(Debug)]
pub enum SlowPathRun {
    /// The request completed — answered or failed. Telemetry (request
    /// latency, trace) is finalised. Boxed to keep the enum small next
    /// to the already-boxed [`SlowPathRun::Paused`].
    Done(Box<Result<MappingResponse, RuntimeError>>),
    /// The search observed its fired [`PauseToken`] at a generation
    /// boundary and checkpointed. The request's telemetry stays in
    /// flight inside the box; redeem it with
    /// [`RequestPipeline::resume`] — the eventual response is
    /// bit-identical to never having paused.
    Paused(Box<PausedSearch>),
}

/// In-flight state of a resumable slow-path request: everything the
/// Search stage needs on every (re)entry. The evaluator wrapper and
/// generation buffer ride along so cache-traffic accounting and the
/// generation stream span every pause/resume segment of the request.
#[derive(Debug)]
struct ResumableState {
    request: MappingRequest,
    prepared: PreparedRequest,
    trace: StageTrace,
    started: Instant,
    deadline: Option<Instant>,
    cancel: CancelToken,
    pause: PauseToken,
    cached: CachedEvaluator,
    /// Warm-start seeds, consumed by the first drive; resumes restore
    /// their population from the checkpoint instead.
    seeds: Vec<Arc<Genome>>,
    generations: Option<GenerationBuffer>,
}

/// A search preempted at a generation boundary: the request's
/// in-flight pipeline state plus the search's own checkpoint
/// (population, memo, RNG position). Produced by
/// [`RequestPipeline::slow_path_resumable`], redeemed by
/// [`RequestPipeline::resume`]; a serving layer holds it (or requeues
/// it) while higher-priority work runs.
#[derive(Debug)]
pub struct PausedSearch {
    state: ResumableState,
    checkpoint: Box<SearchCheckpoint>,
}

impl PausedSearch {
    /// The request this paused search answers.
    pub fn request(&self) -> &MappingRequest {
        &self.state.request
    }

    /// The paused search's cancel token (a watchdog can still cancel a
    /// paused request; the cancellation lands at the first resumed
    /// generation boundary).
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// The paused search's pause token (cleared by
    /// [`RequestPipeline::resume`]).
    pub fn pause_token(&self) -> PauseToken {
        self.state.pause.clone()
    }

    /// The absolute deadline the request still has to meet, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.deadline
    }

    /// Generations completed before the pause.
    pub fn generations_completed(&self) -> usize {
        self.checkpoint.generations_completed()
    }

    /// Evaluations performed before the pause — what a budget meter
    /// can use to estimate the remaining cost of the resumed search.
    pub fn evaluations_performed(&self) -> usize {
        self.checkpoint.evaluations_performed()
    }
}

/// One coalesced group: the request its leader runs (threads pinned to
/// the batch budget), the normalised form that defines membership, and
/// the input positions it answers.
struct Group {
    request: MappingRequest,
    normalized: MappingRequest,
    positions: Vec<usize>,
}

/// The staged serving path over one [`MappingService`].
///
/// Cheap to construct (a borrow); every entry point of the service —
/// [`MappingService::submit`], [`MappingService::submit_batch_with`], the
/// wire front-end — obtains one via [`MappingService::pipeline`] and
/// drives the same stages.
#[derive(Debug, Clone, Copy)]
pub struct RequestPipeline<'s> {
    service: &'s MappingService,
}

impl<'s> RequestPipeline<'s> {
    pub(crate) fn new(service: &'s MappingService) -> Self {
        RequestPipeline { service }
    }

    /// The service this pipeline serves.
    pub fn service(&self) -> &'s MappingService {
        self.service
    }

    /// Runs one stage: records its wall time into the stage's latency
    /// histogram (whose count doubles as the stage's `entered` total, so
    /// every entry records — errors included) and into the per-request
    /// trace, and bumps the stage error counter on failure.
    fn try_stage<T>(
        &self,
        stage: PipelineStage,
        trace: &mut StageTrace,
        body: impl FnOnce() -> Result<T, RuntimeError>,
    ) -> Result<T, RuntimeError> {
        let telemetry = self.service.telemetry();
        let started = Instant::now();
        let outcome = body();
        let elapsed = started.elapsed();
        // Nanosecond granularity: flooring to whole microseconds per
        // entry would erase the sub-microsecond bookkeeping stages from
        // the lifetime totals entirely.
        telemetry.stage_duration[stage.index()].record(saturating_nanos(elapsed));
        trace.record(stage, elapsed);
        if outcome.is_err() {
            telemetry.stage_errors[stage.index()].inc();
        }
        outcome
    }

    /// [`RequestPipeline::try_stage`] for infallible stage bodies.
    fn stage<T>(
        &self,
        stage: PipelineStage,
        trace: &mut StageTrace,
        body: impl FnOnce() -> T,
    ) -> T {
        self.try_stage(stage, trace, || Ok(body()))
            .unwrap_or_else(|_: RuntimeError| unreachable!("infallible stage"))
    }

    /// Normalize + Fingerprint for one request: validate the budgets,
    /// reject unknown presets before any expensive work, and derive the
    /// evaluator-pool key plus (for response-cache-eligible requests)
    /// the full-request coalescing key.
    fn prepare(
        &self,
        request: &MappingRequest,
        trace: &mut StageTrace,
    ) -> Result<PreparedRequest, RuntimeError> {
        let config = self.try_stage(PipelineStage::Normalize, trace, || {
            if request.validation_samples == 0 {
                return Err(RuntimeError::InvalidRequest {
                    reason: "validation_samples must be at least 1".to_string(),
                });
            }
            // Reject malformed search budgets before paying for evaluator
            // construction (validation-set generation dominates cold
            // setup).
            let config = request.search_config();
            config
                .validate()
                .map_err(|e| RuntimeError::InvalidRequest {
                    reason: e.to_string(),
                })?;
            // Unknown presets are cheap name lookups: fail them here
            // instead of inside the build-claimed CacheLookup stage. The
            // errors are constructed exactly as the registries construct
            // them, so the failure surface is unchanged.
            let models = self.service.models();
            if !models.contains(&request.model) {
                return Err(RuntimeError::UnknownModel {
                    name: request.model.clone(),
                    available: models.available(),
                });
            }
            let platforms = self.service.platforms();
            if !platforms.contains(&request.platform) {
                return Err(RuntimeError::UnknownPlatform {
                    name: request.platform.clone(),
                    available: platforms.names().join(", "),
                });
            }
            Ok(config)
        })?;
        let (evaluator_key, response_key) = self.stage(PipelineStage::Fingerprint, trace, || {
            // The coalescing fingerprint only matters to the response
            // cache and in-flight joining, both cold-only: warm-start
            // answers depend on archive history, so they are never
            // replayed.
            let response_key =
                (!request.warm_start && self.service.responses().enabled()).then(|| {
                    let normalized = normalized_for_coalescing(request);
                    ResponseKey {
                        fingerprint: fingerprint_serialized(&normalized),
                        normalized,
                    }
                });
            (request.evaluator_key(), response_key)
        });
        Ok(PreparedRequest {
            config,
            evaluator_key,
            response_key,
        })
    }

    /// Runs the per-request pipeline end to end — exactly
    /// [`RequestPipeline::fast_path`] composed with
    /// [`RequestPipeline::slow_path`]. This is what
    /// [`MappingService::submit`] delegates to, and what each coalesced
    /// group leader of [`RequestPipeline::run_batch`] executes.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown presets, an invalid request, or an
    /// internal evaluation failure.
    pub fn run(&self, request: &MappingRequest) -> Result<MappingResponse, RuntimeError> {
        match self.fast_path(request) {
            FastPathOutcome::Answered(response) => Ok(*response),
            FastPathOutcome::NeedsSearch(ticket) => self.slow_path(*ticket),
            FastPathOutcome::Rejected(error) => Err(error),
        }
    }

    /// Runs the fast path — Normalize → Fingerprint → Coalesce →
    /// CacheLookup — for one request. Pure and bounded-latency: it
    /// validates, hashes and probes the response cache, but never builds
    /// an evaluator, never takes the evaluator build claim and never
    /// runs a search, so an event-driven server can call it on its
    /// reactor thread.
    ///
    /// Answered and Rejected outcomes complete the request's telemetry
    /// (request counter, latency histogram, trace) here; a
    /// [`FastPathOutcome::NeedsSearch`] ticket carries the in-flight
    /// trace and clock into [`RequestPipeline::slow_path`], which
    /// completes them.
    pub fn fast_path(&self, request: &MappingRequest) -> FastPathOutcome {
        let started = Instant::now();
        let telemetry = self.service.telemetry();
        telemetry.requests.inc();
        let mut trace = StageTrace::new(telemetry.begin_trace(&request.model, &request.platform));

        let prepared = match self.prepare(request, &mut trace) {
            Ok(prepared) => prepared,
            Err(error) => {
                telemetry
                    .request_duration
                    .record(saturating_nanos(started.elapsed()));
                telemetry.finish_trace(trace.take_recorder(), Some(error.to_string()));
                return FastPathOutcome::Rejected(error);
            }
        };
        // A single request has nothing to merge with: the Coalesce stage
        // passes through (batch traffic does its grouping in
        // `run_batch`), counted so the stage totals reflect every
        // request's path.
        self.stage(PipelineStage::Coalesce, &mut trace, || ());

        let replay = self.stage(PipelineStage::CacheLookup, &mut trace, || {
            prepared
                .response_key
                .as_ref()
                .and_then(|key| self.service.responses().probe(key))
        });
        trace.note("cache_lookup", || match (&replay, &prepared.response_key) {
            (Some(_), _) => "response cache hit".to_string(),
            (None, Some(_)) => "response cache miss".to_string(),
            (None, None) => "response cache skipped (warm start or disabled)".to_string(),
        });
        if let Some(stored) = replay {
            telemetry.fast_path_answered.inc();
            telemetry
                .request_duration
                .record(saturating_nanos(started.elapsed()));
            telemetry.finish_trace(trace.take_recorder(), None);
            return FastPathOutcome::Answered(Box::new(MappingResponse::clone(&stored)));
        }
        FastPathOutcome::NeedsSearch(Box::new(SearchTicket {
            deadline: request
                .deadline_ms
                .map(|ms| started + Duration::from_millis(ms)),
            request: request.clone(),
            prepared,
            trace,
            started,
            cancel: CancelToken::new(),
        }))
    }

    /// Redeems a [`SearchTicket`]: ResolveEvaluator → WarmStartSeed →
    /// Search → ArchiveFeedback, plus the response-cache store that
    /// makes the next identical cold request a fast-path answer.
    /// Completes the telemetry the fast path left in flight.
    ///
    /// # Errors
    ///
    /// Returns an error for an evaluator build failure or an internal
    /// evaluation failure.
    pub fn slow_path(&self, ticket: SearchTicket) -> Result<MappingResponse, RuntimeError> {
        let SearchTicket {
            request,
            prepared,
            mut trace,
            started,
            deadline,
            cancel,
        } = ticket;
        // A ticket that expired while queued is answered without
        // starting its search: a partial front of zero generations would
        // be empty anyway, and the worker slot goes to a request that
        // can still meet its deadline.
        if let Some(error) = self.expired_while_queued(&request, deadline) {
            return self.complete(
                Err(error),
                prepared.response_key.as_ref(),
                &mut trace,
                started,
            );
        }
        let outcome = self.finish(&request, &prepared, &mut trace, started, deadline, &cancel);
        self.complete(outcome, prepared.response_key.as_ref(), &mut trace, started)
    }

    /// The slow path driven with a [`PauseToken`] attached — what a
    /// preemptive serving layer uses instead of
    /// [`RequestPipeline::slow_path`]. When the token is fired, the
    /// search checkpoints at its next generation boundary and the call
    /// returns [`SlowPathRun::Paused`]; redeem the paused state with
    /// [`RequestPipeline::resume`] (any number of times). The final
    /// response is bit-identical to an uninterrupted
    /// [`RequestPipeline::slow_path`] of the same ticket — pausing
    /// changes *when* the answer arrives, never what it is.
    pub fn slow_path_resumable(&self, ticket: SearchTicket, pause: PauseToken) -> SlowPathRun {
        let SearchTicket {
            request,
            prepared,
            mut trace,
            started,
            deadline,
            cancel,
        } = ticket;
        if let Some(error) = self.expired_while_queued(&request, deadline) {
            return SlowPathRun::Done(Box::new(self.complete(
                Err(error),
                prepared.response_key.as_ref(),
                &mut trace,
                started,
            )));
        }
        let (cached, seeds) = match self.stage_prologue(&request, &prepared, &mut trace) {
            Ok(resolved) => resolved,
            Err(error) => {
                return SlowPathRun::Done(Box::new(self.complete(
                    Err(error),
                    prepared.response_key.as_ref(),
                    &mut trace,
                    started,
                )));
            }
        };
        let generations = self
            .service
            .telemetry()
            .search_telemetry()
            .then(GenerationBuffer::new);
        self.drive_resumable(
            ResumableState {
                request,
                prepared,
                trace,
                started,
                deadline,
                cancel,
                pause,
                cached,
                seeds,
                generations,
            },
            None,
        )
    }

    /// Resumes a search paused by
    /// [`RequestPipeline::slow_path_resumable`], clearing its pause
    /// token first (resuming means "run now"; a later preemption fires
    /// the token again). The search picks up from its checkpointed
    /// generation and the eventual response is bit-identical to never
    /// having paused.
    pub fn resume(&self, paused: Box<PausedSearch>) -> SlowPathRun {
        let PausedSearch { state, checkpoint } = *paused;
        state.pause.clear();
        self.drive_resumable(state, Some(checkpoint))
    }

    /// The deadline check every slow-path entry runs before doing
    /// expensive work, with its miss telemetry.
    fn expired_while_queued(
        &self,
        request: &MappingRequest,
        deadline: Option<Instant>,
    ) -> Option<RuntimeError> {
        if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
            self.service.telemetry().deadline_misses.inc();
            return Some(RuntimeError::DeadlineExceeded {
                deadline_ms: request.deadline_ms.unwrap_or(0),
            });
        }
        None
    }

    /// Completes a slow-path request whichever way it ended: stores
    /// cacheable responses (partial fronts are valid answers for *this*
    /// deadline but not the canonical answer, so they are never
    /// cached), records the end-to-end latency (errors included, so the
    /// histogram count always equals the requests counter) and freezes
    /// the trace.
    fn complete(
        &self,
        outcome: Result<MappingResponse, RuntimeError>,
        response_key: Option<&ResponseKey>,
        trace: &mut StageTrace,
        started: Instant,
    ) -> Result<MappingResponse, RuntimeError> {
        let telemetry = self.service.telemetry();
        if let Ok(response) = &outcome {
            if response.stats.partial {
                telemetry.partial_responses.inc();
            } else if let Some(key) = response_key {
                self.service.responses().insert(key, response);
            }
        }
        telemetry
            .request_duration
            .record(saturating_nanos(started.elapsed()));
        let error = outcome.as_ref().err().map(ToString::to_string);
        telemetry.finish_trace(trace.take_recorder(), error);
        outcome
    }

    /// Runs (or re-enters) the Search stage of a resumable request and
    /// dispatches on how it ended. Each pause/resume segment records
    /// its own Search-stage entry; the per-request trace accumulates
    /// across segments, and the search counters are bumped once, at
    /// completion, off the final outcome (which already spans the
    /// pre-pause segments through the checkpoint).
    fn drive_resumable(
        &self,
        state: ResumableState,
        from: Option<Box<SearchCheckpoint>>,
    ) -> SlowPathRun {
        let ResumableState {
            request,
            prepared,
            mut trace,
            started,
            deadline,
            cancel,
            pause,
            cached,
            seeds,
            generations,
        } = state;
        let telemetry = self.service.telemetry();
        let run = self.try_stage(PipelineStage::Search, &mut trace, || {
            let mut search = MappingSearch::new(&cached, prepared.config)
                .with_seeds(seeds)
                .with_cancel_token(cancel.clone())
                .with_pause_token(pause.clone());
            if let Some(deadline) = deadline {
                search = search.with_deadline(deadline);
            }
            if let Some(buffer) = &generations {
                search = search.with_telemetry(buffer);
            }
            let run = match from {
                Some(checkpoint) => search.resume(checkpoint)?,
                None => search.run_resumable()?,
            };
            if let SearchRun::Complete(outcome) = &run {
                telemetry.searches_run.inc();
                telemetry
                    .evaluations_scheduled
                    .add(outcome.evaluations() as u64);
                telemetry
                    .evaluations_performed
                    .add(outcome.evaluations_performed() as u64);
            }
            Ok(run)
        });
        match run {
            Err(error) => SlowPathRun::Done(Box::new(self.complete(
                Err(error),
                prepared.response_key.as_ref(),
                &mut trace,
                started,
            ))),
            Ok(SearchRun::Paused(checkpoint)) => SlowPathRun::Paused(Box::new(PausedSearch {
                state: ResumableState {
                    request,
                    prepared,
                    trace,
                    started,
                    deadline,
                    cancel,
                    pause,
                    cached,
                    seeds: Vec::new(),
                    generations,
                },
                checkpoint,
            })),
            Ok(SearchRun::Complete(outcome)) => {
                if let Some(buffer) = generations {
                    let events = buffer.take();
                    telemetry.search_generations.add(events.len() as u64);
                    trace.generations(events);
                }
                let response =
                    self.stage_epilogue(&request, &mut trace, started, &outcome, &cached);
                SlowPathRun::Done(Box::new(self.complete(
                    Ok(response),
                    prepared.response_key.as_ref(),
                    &mut trace,
                    started,
                )))
            }
        }
    }

    /// ResolveEvaluator → WarmStartSeed → Search → ArchiveFeedback for a
    /// prepared request.
    fn finish(
        &self,
        request: &MappingRequest,
        prepared: &PreparedRequest,
        trace: &mut StageTrace,
        started: Instant,
        deadline: Option<Instant>,
        cancel: &CancelToken,
    ) -> Result<MappingResponse, RuntimeError> {
        let telemetry = self.service.telemetry();
        let (cached, seeds) = self.stage_prologue(request, prepared, trace)?;

        // When the generation stream is on, the search reports every
        // generation into a request-local buffer; nothing the search
        // decides depends on it (the sink is write-only).
        let generations = telemetry.search_telemetry().then(GenerationBuffer::new);
        let outcome = self.try_stage(PipelineStage::Search, trace, || {
            let mut search = MappingSearch::new(&cached, prepared.config)
                .with_seeds(seeds)
                .with_cancel_token(cancel.clone());
            if let Some(deadline) = deadline {
                search = search.with_deadline(deadline);
            }
            if let Some(buffer) = &generations {
                search = search.with_telemetry(buffer);
            }
            let outcome = search.run()?;
            telemetry.searches_run.inc();
            telemetry
                .evaluations_scheduled
                .add(outcome.evaluations() as u64);
            telemetry
                .evaluations_performed
                .add(outcome.evaluations_performed() as u64);
            Ok(outcome)
        })?;
        if let Some(buffer) = generations {
            let events = buffer.take();
            telemetry.search_generations.add(events.len() as u64);
            trace.generations(events);
        }
        Ok(self.stage_epilogue(request, trace, started, &outcome, &cached))
    }

    /// ResolveEvaluator + WarmStartSeed: everything the Search stage
    /// needs, shared by the one-shot and resumable slow paths.
    fn stage_prologue(
        &self,
        request: &MappingRequest,
        prepared: &PreparedRequest,
        trace: &mut StageTrace,
    ) -> Result<(CachedEvaluator, Vec<Arc<Genome>>), RuntimeError> {
        let telemetry = self.service.telemetry();
        let (cached, evaluator, built) =
            self.try_stage(PipelineStage::ResolveEvaluator, trace, || {
                let (evaluator, fingerprint, built) = self
                    .service
                    .resolve_evaluator_keyed(request, prepared.evaluator_key)?;
                if built {
                    telemetry.evaluator_builds.inc();
                } else {
                    telemetry.evaluator_pool_hits.inc();
                }
                let cached = CachedEvaluator::with_fingerprint(
                    Arc::clone(&evaluator),
                    Arc::clone(self.service.cache()),
                    fingerprint,
                );
                Ok((cached, evaluator, built))
            })?;
        trace.note("resolve_evaluator", || {
            format!("evaluator {}", if built { "built" } else { "pool_hit" })
        });

        let seeds = self.try_stage(PipelineStage::WarmStartSeed, trace, || {
            if !request.warm_start {
                return Ok(Vec::new());
            }
            let seeds = self.service.warm_start_seeds(request, &evaluator)?;
            telemetry.warm_seeds_gathered.add(seeds.len() as u64);
            Ok(seeds)
        })?;
        trace.note("warm_start_seed", || {
            if request.warm_start {
                format!("{} seeds gathered", seeds.len())
            } else {
                "warm start not requested".to_string()
            }
        });
        Ok((cached, seeds))
    }

    /// ArchiveFeedback + response assembly for a completed search,
    /// shared by the one-shot and resumable slow paths.
    fn stage_epilogue(
        &self,
        request: &MappingRequest,
        trace: &mut StageTrace,
        started: Instant,
        outcome: &SearchOutcome,
        cached: &CachedEvaluator,
    ) -> MappingResponse {
        let telemetry = self.service.telemetry();
        let (pareto_front, best_by_objective) =
            self.stage(PipelineStage::ArchiveFeedback, trace, || {
                let pareto_front: Vec<EvaluatedConfig> =
                    outcome.pareto_front().into_iter().cloned().collect();
                let best_by_objective = outcome.best_by_objective().cloned();
                // Feed the elite archive for future warm starts: the front
                // plus the best-by-objective pick (which a 2-D front need
                // not contain). `Arc`-shared with the response, so this
                // costs refcount bumps.
                let elites = pareto_front
                    .iter()
                    .map(|c| Arc::clone(&c.genome))
                    .chain(best_by_objective.iter().map(|c| Arc::clone(&c.genome)));
                telemetry
                    .elites_recorded
                    .add((pareto_front.len() + usize::from(best_by_objective.is_some())) as u64);
                self.service
                    .elite_archive()
                    .record(&request.model, &request.platform, elites);
                (pareto_front, best_by_objective)
            });

        let summary = outcome.summary();
        // Per-request counters from the wrapper, not deltas of the
        // shared cache counters: concurrent requests would otherwise
        // misattribute each other's traffic.
        let traffic = cached.traffic();
        trace.note("search", || {
            format!(
                "{} generations, {} evaluations ({} memoized), {} cache hits / {} misses{}",
                summary.generations_run,
                summary.evaluations,
                summary.memo_hits,
                traffic.hits,
                traffic.misses,
                if summary.partial {
                    ", partial (deadline/cancel)"
                } else if summary.early_stopped {
                    ", early stop"
                } else {
                    ""
                }
            )
        });
        let stats = RequestStats {
            evaluations: summary.evaluations,
            evaluations_performed: summary.evaluations_performed,
            memo_hits: summary.memo_hits,
            warm_start_seeds: summary.warm_start_seeds,
            generations_run: summary.generations_run,
            early_stopped: summary.early_stopped,
            partial: summary.partial,
            cache_hits: traffic.hits,
            cache_misses: traffic.misses,
            cache_coalesced: traffic.coalesced,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            stage_micros: trace.stage_micros(),
        };
        MappingResponse {
            model: request.model.clone(),
            platform: request.platform.clone(),
            pareto_front,
            best_by_objective,
            stats,
        }
    }

    /// Runs a batch through the pipeline: batch-level Normalize /
    /// Fingerprint / Coalesce stages group identical requests, then each
    /// group leader executes the full per-request pipeline — sequentially
    /// or on a scoped worker pool under the [`BatchConfig`] thread budget.
    /// Responses come back in request order, duplicates as clones of
    /// their leader's.
    pub fn run_batch(&self, requests: &[MappingRequest], config: &BatchConfig) -> BatchReport {
        let started = Instant::now();
        let telemetry = self.service.telemetry();
        telemetry.batches.inc();
        telemetry.batch_size.record(requests.len() as u64);
        // Batch-level stages contribute to the stage totals but belong to
        // no single request, so they run untraced.
        let mut batch_trace = StageTrace::untraced();

        // Normalize (batch-level): the answer-neutral form every request
        // coalesces under. Validation stays per-leader so an invalid
        // request yields exactly the error sequential `submit` returns.
        let normalized: Vec<MappingRequest> =
            self.stage(PipelineStage::Normalize, &mut batch_trace, || {
                requests.iter().map(normalized_for_coalescing).collect()
            });
        // Fingerprint (batch-level): the full-request grouping keys,
        // hashed over the normalised forms the Normalize stage just
        // built (re-deriving them via `coalescing_key` would clone and
        // normalise every request a second time).
        let keys: Vec<u64> = self.stage(PipelineStage::Fingerprint, &mut batch_trace, || {
            normalized.iter().map(fingerprint_serialized).collect()
        });

        // Coalesce: group positions by key, membership confirmed by
        // normalised equality so a 64-bit collision splits a group
        // instead of answering one request with another's front; then pin
        // each leader's inner-search threads to the batch budget.
        let (mut groups, concurrency, per_request) =
            self.stage(PipelineStage::Coalesce, &mut batch_trace, || {
                let mut groups: Vec<Group> = Vec::new();
                let mut groups_of: std::collections::HashMap<u64, Vec<usize>> =
                    std::collections::HashMap::new();
                for (position, (request, normalized)) in
                    requests.iter().zip(&normalized).enumerate()
                {
                    let candidates = groups_of.entry(keys[position]).or_default();
                    match candidates
                        .iter()
                        .find(|&&index| &groups[index].normalized == normalized)
                    {
                        Some(&index) => groups[index].positions.push(position),
                        None => {
                            candidates.push(groups.len());
                            groups.push(Group {
                                request: request.clone(),
                                normalized: normalized.clone(),
                                positions: vec![position],
                            });
                        }
                    }
                }
                let (concurrency, per_request) = config.effective(groups.len());
                telemetry
                    .coalesced_requests
                    .add((requests.len() - groups.len()) as u64);
                (groups, concurrency, per_request)
            });
        // An explicit smaller request value is kept (and an invalid zero
        // is kept so the leader's Normalize stage rejects it exactly as
        // sequential `submit` would have).
        for group in &mut groups {
            group.request.threads = Some(match group.request.threads {
                Some(explicit) => explicit.min(per_request),
                None => per_request,
            });
        }

        let outcomes: Vec<Result<MappingResponse, RuntimeError>> = if concurrency <= 1 {
            groups
                .iter()
                .map(|group| self.run(&group.request))
                .collect()
        } else {
            self.run_concurrent(&groups, concurrency)
        };

        // Scatter each group's outcome back to the positions it answers.
        let mut responses: Vec<Option<Result<MappingResponse, RuntimeError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (group, outcome) in groups.iter().zip(outcomes) {
            let (last, rest) = group
                .positions
                .split_last()
                .expect("every group holds at least one position");
            for &position in rest {
                responses[position] = Some(outcome.clone());
            }
            responses[*last] = Some(outcome);
        }
        let responses: Vec<_> = responses
            .into_iter()
            .map(|slot| slot.expect("every position answered by its group"))
            .collect();

        BatchReport {
            leader_positions: groups.iter().map(|group| group.positions[0]).collect(),
            stats: BatchStats {
                requests: requests.len(),
                unique_requests: groups.len(),
                coalesced_requests: requests.len() - groups.len(),
                max_concurrent: concurrency,
                threads_per_request: per_request,
                elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            },
            responses,
        }
    }

    /// Runs the group leaders on `concurrency` scoped worker threads.
    /// Work is handed out through an atomic cursor and results written
    /// back by group index, so the output order is independent of
    /// scheduling (the same ordered-write-back idiom as the rayon
    /// stand-in's parallel map).
    fn run_concurrent(
        &self,
        groups: &[Group],
        concurrency: usize,
    ) -> Vec<Result<MappingResponse, RuntimeError>> {
        let slots: Vec<Mutex<Option<Result<MappingResponse, RuntimeError>>>> =
            (0..groups.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..concurrency.min(groups.len()) {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some(group) = groups.get(index) else {
                        break;
                    };
                    let outcome = self.run(&group.request);
                    *slots[index].lock().expect("slot lock never poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock never poisoned")
                    .expect("every group visited by the cursor")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request() -> MappingRequest {
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(300)
            .generations(2)
            .population_size(8)
    }

    #[test]
    fn stage_order_names_and_indices_are_stable() {
        assert_eq!(PipelineStage::ALL.len(), STAGE_COUNT);
        for (position, stage) in PipelineStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), position);
        }
        let names: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "normalize",
                "fingerprint",
                "coalesce",
                "cache_lookup",
                "resolve_evaluator",
                "warm_start_seed",
                "search",
                "archive_feedback"
            ]
        );
    }

    #[test]
    fn run_counts_every_stage_once_per_request() {
        let service = MappingService::new();
        let response = service.pipeline().run(&small_request()).unwrap();
        let stats = service.pipeline_stats();
        for stage in PipelineStage::ALL {
            assert_eq!(stats.stage(stage).entered, 1, "{}", stage.name());
            assert_eq!(stats.stage(stage).errors, 0, "{}", stage.name());
        }
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.searches_run, 1);
        assert_eq!(stats.evaluations_scheduled, 16);
        assert_eq!(
            stats.evaluations_performed + response.stats.memo_hits as u64,
            stats.evaluations_scheduled
        );
        // The per-request trace covers the same stages.
        assert!(response.stats.stage_micros.iter().all(|&m| m >= 0.0));
        assert!(response.stats.stage_micros[PipelineStage::Search.index()] > 0.0);
    }

    #[test]
    fn rejected_requests_error_in_normalize_before_any_expensive_stage() {
        let service = MappingService::new();
        let unknown = MappingRequest::new("resnet", "dual_test");
        assert!(matches!(
            service.pipeline().run(&unknown),
            Err(RuntimeError::UnknownModel { .. })
        ));
        let invalid = MappingRequest {
            population_size: 1,
            ..small_request()
        };
        assert!(matches!(
            service.pipeline().run(&invalid),
            Err(RuntimeError::InvalidRequest { .. })
        ));
        let stats = service.pipeline_stats();
        assert_eq!(stats.stage(PipelineStage::Normalize).entered, 2);
        assert_eq!(stats.stage(PipelineStage::Normalize).errors, 2);
        // Neither request made it past Normalize.
        assert_eq!(stats.stage(PipelineStage::CacheLookup).entered, 0);
        assert_eq!(stats.stage(PipelineStage::ResolveEvaluator).entered, 0);
        assert_eq!(stats.stage(PipelineStage::Search).entered, 0);
        assert_eq!(stats.evaluator_builds, 0);
    }

    #[test]
    fn repeated_cold_request_is_answered_on_the_fast_path() {
        let service = MappingService::new();
        let cold = service.pipeline().run(&small_request()).unwrap();
        let replay = service.pipeline().run(&small_request()).unwrap();
        // Bit-identical replay, stats included — the stored response
        // verbatim, like a coalesced batch duplicate.
        assert_eq!(cold, replay);
        let stats = service.pipeline_stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.fast_path_answered, 1);
        assert_eq!(stats.searches_run, 1, "the replay never searched");
        assert_eq!(stats.stage(PipelineStage::CacheLookup).entered, 2);
        assert_eq!(
            stats.stage(PipelineStage::ResolveEvaluator).entered,
            1,
            "the fast path never resolves an evaluator"
        );
        let responses = service.response_cache_stats();
        assert_eq!(responses.hits, 1);
        assert_eq!(responses.insertions, 1);
    }

    #[test]
    fn fast_path_outcome_seam_is_typed_and_composable() {
        let service = MappingService::new();
        let pipeline = service.pipeline();
        // Rejected: invalid requests never produce a ticket.
        match pipeline.fast_path(&MappingRequest::new("resnet", "dual_test")) {
            FastPathOutcome::Rejected(RuntimeError::UnknownModel { .. }) => {}
            other => panic!("expected a rejection, got {other:?}"),
        }
        // NeedsSearch: a cold first-time request yields a ticket that
        // carries the coalescing identity for in-flight joining.
        let ticket = match pipeline.fast_path(&small_request()) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        assert_eq!(ticket.request(), &small_request());
        let fingerprint = ticket.coalescing_fingerprint().expect("cold → eligible");
        assert!(ticket.normalized_request().is_some());
        let response = pipeline.slow_path(*ticket).unwrap();
        // Answered: redeeming the ticket stored the response, so the
        // identical request now completes inside the fast path.
        match pipeline.fast_path(&small_request()) {
            FastPathOutcome::Answered(replay) => assert_eq!(*replay, response),
            other => panic!("expected a fast-path answer, got {other:?}"),
        }
        // The fingerprint is the batch-coalescing key: stable across
        // calls for the same request.
        let again = match pipeline.fast_path(&small_request().seed(99)) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        assert_ne!(again.coalescing_fingerprint().unwrap(), fingerprint);
    }

    #[test]
    fn warm_start_requests_bypass_the_response_cache() {
        let service = MappingService::new();
        let pipeline = service.pipeline();
        pipeline.run(&small_request()).unwrap();
        let warm = small_request().warm_start(true).stall_generations(2);
        pipeline.run(&warm).unwrap();
        pipeline.run(&warm).unwrap();
        let stats = service.pipeline_stats();
        // Both warm submissions searched: warm answers depend on archive
        // history, so they are never stored or replayed.
        assert_eq!(stats.searches_run, 3);
        assert_eq!(stats.fast_path_answered, 0);
        match pipeline.fast_path(&warm) {
            FastPathOutcome::NeedsSearch(ticket) => {
                assert_eq!(ticket.coalescing_fingerprint(), None);
                assert!(ticket.normalized_request().is_none());
            }
            other => panic!("warm requests always need a search, got {other:?}"),
        }
    }

    #[test]
    fn disabled_response_cache_reruns_every_search() {
        let service = MappingService::with_config(crate::service::ServiceConfig {
            response_cache_entries: 0,
            ..Default::default()
        });
        service.pipeline().run(&small_request()).unwrap();
        service.pipeline().run(&small_request()).unwrap();
        let stats = service.pipeline_stats();
        assert_eq!(stats.searches_run, 2);
        assert_eq!(stats.fast_path_answered, 0);
        assert_eq!(service.response_cache_stats().insertions, 0);
    }

    #[test]
    fn paused_and_resumed_slow_path_answers_bit_identically() {
        // Response cache off so the second submission reaches the slow
        // path instead of replaying the first answer.
        let service = MappingService::with_config(crate::service::ServiceConfig {
            response_cache_entries: 0,
            ..Default::default()
        });
        let pipeline = service.pipeline();
        let request = small_request().generations(4);
        let plain = pipeline.run(&request).unwrap();

        let ticket = match pipeline.fast_path(&request) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        // Token fired before dispatch: the search pauses at its first
        // generation boundary (after making progress — never before).
        let pause = PauseToken::new();
        pause.pause();
        let paused = match pipeline.slow_path_resumable(*ticket, pause.clone()) {
            SlowPathRun::Paused(paused) => paused,
            other => panic!("expected a pause, got {other:?}"),
        };
        assert!(paused.generations_completed() >= 1);
        assert!(paused.evaluations_performed() > 0);
        assert_eq!(paused.request(), &request);

        // resume() clears the token and runs to completion.
        let resumed = match pipeline.resume(paused) {
            SlowPathRun::Done(outcome) => outcome.unwrap(),
            other => panic!("expected completion, got {other:?}"),
        };
        assert!(!pause.is_paused());
        // Bit-identical answer content and search accounting; only
        // wall-clock fields may differ.
        assert_eq!(resumed.pareto_front, plain.pareto_front);
        assert_eq!(resumed.best_by_objective, plain.best_by_objective);
        assert_eq!(resumed.stats.evaluations, plain.stats.evaluations);
        assert_eq!(
            resumed.stats.evaluations_performed,
            plain.stats.evaluations_performed
        );
        assert_eq!(resumed.stats.memo_hits, plain.stats.memo_hits);
        assert_eq!(resumed.stats.generations_run, plain.stats.generations_run);
        assert!(!resumed.stats.partial);
        // Each request's search completed exactly once, pause segments
        // notwithstanding.
        assert_eq!(service.pipeline_stats().searches_run, 2);
    }

    #[test]
    fn resumable_slow_path_without_a_fired_token_completes_directly() {
        let service = MappingService::new();
        let pipeline = service.pipeline();
        let ticket = match pipeline.fast_path(&small_request()) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        let outcome = pipeline.slow_path_resumable(*ticket, PauseToken::new());
        let response = match outcome {
            SlowPathRun::Done(outcome) => outcome.unwrap(),
            other => panic!("expected completion, got {other:?}"),
        };
        // The completed response is stored for fast-path replay exactly
        // like the one-shot slow path's.
        match pipeline.fast_path(&small_request()) {
            FastPathOutcome::Answered(replay) => assert_eq!(*replay, response),
            other => panic!("expected a fast-path answer, got {other:?}"),
        }
    }

    #[test]
    fn batch_counts_leaders_and_coalesced_duplicates() {
        let service = MappingService::new();
        let batch = vec![small_request(), small_request(), small_request().seed(5)];
        let report = service
            .pipeline()
            .run_batch(&batch, &BatchConfig::new().max_concurrent(2));
        assert_eq!(report.stats.unique_requests, 2);
        let stats = service.pipeline_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 2, "only leaders run the pipeline");
        assert_eq!(stats.coalesced_requests, 1);
        assert_eq!(stats.searches_run, 2);
        // Batch-level stages ran once for the batch, per-request stages
        // once per leader.
        assert_eq!(stats.stage(PipelineStage::Coalesce).entered, 1 + 2);
        assert_eq!(stats.stage(PipelineStage::Search).entered, 2);
    }

    #[test]
    fn pool_hits_and_builds_are_distinguished() {
        let service = MappingService::new();
        service.pipeline().run(&small_request()).unwrap();
        service.pipeline().run(&small_request().seed(9)).unwrap();
        let stats = service.pipeline_stats();
        assert_eq!(stats.evaluator_builds, 1);
        assert_eq!(stats.evaluator_pool_hits, 1);
    }

    #[test]
    fn stage_trace_keeps_sub_microsecond_durations() {
        // The satellite regression: 250 ns stage entries used to be
        // floored to 0 µs by per-entry microsecond accumulation.
        let mut trace = StageTrace::untraced();
        trace.record(PipelineStage::Fingerprint, Duration::from_nanos(250));
        trace.record(PipelineStage::Fingerprint, Duration::from_nanos(250));
        let micros = trace.stage_micros();
        assert!((micros[PipelineStage::Fingerprint.index()] - 0.5).abs() < 1e-12);
        assert_eq!(micros[PipelineStage::Search.index()], 0.0);
    }

    #[test]
    fn stage_trace_saturates_instead_of_wrapping() {
        let mut trace = StageTrace::untraced();
        trace.record(PipelineStage::Search, Duration::MAX);
        trace.record(PipelineStage::Search, Duration::from_secs(1));
        assert_eq!(
            trace.stage_micros()[PipelineStage::Search.index()],
            u64::MAX as f64 / 1e3
        );
    }

    #[test]
    fn run_retains_a_trace_with_spans_events_and_generations() {
        let service = MappingService::new();
        let response = service.pipeline().run(&small_request()).unwrap();
        let traces = service.telemetry().traces().recent();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.model, "tiny_cnn_cifar10");
        assert!(trace.error.is_none());
        // Every stage left a span, in execution order.
        let span_stages: Vec<&str> = trace.stages.iter().map(|s| s.stage.as_ref()).collect();
        let expected: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(span_stages, expected);
        // Decision events and the search's generation stream rode along
        // — fast-path events (response-cache probe) and slow-path events
        // (evaluator resolution) in one trace.
        assert!(trace.events.iter().any(|e| e.label == "cache_lookup"));
        assert!(trace.events.iter().any(|e| e.label == "resolve_evaluator"));
        assert_eq!(trace.generations.len(), response.stats.generations_run);
        assert_eq!(
            trace
                .generations
                .iter()
                .map(|g| g.scheduled as u64)
                .sum::<u64>(),
            response.stats.evaluations as u64
        );
    }

    #[test]
    fn errored_requests_still_record_request_duration_and_trace() {
        let service = MappingService::new();
        let unknown = MappingRequest::new("resnet", "dual_test");
        assert!(service.pipeline().run(&unknown).is_err());
        let telemetry = service.telemetry();
        assert_eq!(telemetry.request_duration.count(), 1);
        let traces = telemetry.traces().recent();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].error.as_deref().unwrap().contains("resnet"));
    }

    #[test]
    fn expired_queued_ticket_answers_deadline_exceeded_without_searching() {
        let service = MappingService::new();
        let pipeline = service.pipeline();
        let ticket = match pipeline.fast_path(&small_request().deadline_ms(0)) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        assert!(ticket.deadline().is_some());
        assert!(ticket.expired(), "a 0 ms deadline expires immediately");
        match pipeline.slow_path(*ticket) {
            Err(RuntimeError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = service.pipeline_stats();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(
            stats.searches_run, 0,
            "no search starts for an expired ticket"
        );
        assert_eq!(stats.stage(PipelineStage::ResolveEvaluator).entered, 0);
        // The miss still completes the request's telemetry.
        let telemetry = service.telemetry();
        assert_eq!(telemetry.request_duration.count(), 1);
    }

    #[test]
    fn cancelled_ticket_answers_partial_and_is_never_cached() {
        let service = MappingService::new();
        let pipeline = service.pipeline();
        let ticket = match pipeline.fast_path(&small_request()) {
            FastPathOutcome::NeedsSearch(ticket) => ticket,
            other => panic!("expected a ticket, got {other:?}"),
        };
        // What the serving watchdog does: cancel from outside the search.
        ticket.cancel_token().cancel();
        let response = pipeline.slow_path(*ticket).unwrap();
        assert!(response.stats.partial);
        assert!(response.stats.early_stopped);
        assert_eq!(
            response.stats.generations_run, 1,
            "the first generation always runs, so the partial front is non-empty"
        );
        assert!(!response.pareto_front.is_empty());
        let stats = service.pipeline_stats();
        assert_eq!(stats.partial_responses, 1);
        assert_eq!(stats.deadline_misses, 0);
        assert_eq!(
            service.response_cache_stats().insertions,
            0,
            "a partial front must never become the cached canonical answer"
        );
        // The next identical request runs the full search and caches it.
        let full = pipeline.run(&small_request()).unwrap();
        assert!(!full.stats.partial);
        assert_eq!(service.response_cache_stats().insertions, 1);
    }

    #[test]
    fn generous_deadline_answers_bit_identically_and_shares_the_cache_key() {
        let service = MappingService::new();
        let plain = service.pipeline().run(&small_request()).unwrap();
        // Deadline is normalised out of the response-cache key, so the
        // deadlined twin replays the stored undeadlined answer verbatim.
        let replay = service
            .pipeline()
            .run(&small_request().deadline_ms(3_600_000))
            .unwrap();
        assert_eq!(plain, replay);
        assert_eq!(service.pipeline_stats().fast_path_answered, 1);

        // And served cold, a generous deadline changes nothing about the
        // front (the per-generation probe never touches the RNG stream).
        let fresh = MappingService::new();
        let cold = fresh
            .pipeline()
            .run(&small_request().deadline_ms(3_600_000))
            .unwrap();
        assert!(!cold.stats.partial);
        assert_eq!(cold.pareto_front, plain.pareto_front);
        assert_eq!(cold.best_by_objective, plain.best_by_objective);
    }

    #[test]
    fn pipeline_stats_serialize_round_trip() {
        let service = MappingService::new();
        service.pipeline().run(&small_request()).unwrap();
        let stats = service.pipeline_stats();
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
