//! Multi-tenant quality-of-service policy: per-tenant policies, token
//! buckets and a deficit-round-robin weighted-fair queue.
//!
//! The serving layer shares one search-worker pool across tenants; this
//! module holds the mechanisms that make that sharing safe:
//!
//! * [`TenantPolicy`] / [`TenantPolicyTable`] — per-tenant scheduling
//!   weight, priority ceiling and evaluation budget, loaded from the
//!   `--tenant-config` JSON file. Unknown tenants get the table's
//!   default policy, so an unconfigured deployment behaves exactly like
//!   the single-tenant one.
//! * [`TokenBucket`] — the evaluation budget meter: admission requires a
//!   positive balance, the debit is the *actual*
//!   `evaluations_performed` after the search answers (so a bucket may
//!   go negative — a tenant can never be charged less than it used),
//!   and an empty bucket yields the `retry_after_ms` hint behind the
//!   structured `BudgetExhausted` answer.
//! * [`DrrQueue`] — deficit round-robin over per-tenant queues: each
//!   tenant accumulates deficit in proportion to its weight and spends
//!   it on jobs priced in estimated evaluations, so over time tenants
//!   receive worker throughput proportional to their weights and no
//!   backlog, however large, starves a weight-1 tenant
//!   (starvation-proof by construction: every full rotation grows every
//!   backlogged tenant's deficit). Across tenants, a strictly
//!   higher-priority head job is served first; DRR arbitrates among the
//!   tenants tied at the top priority, so priority buys latency while
//!   weights keep governing throughput between equally urgent tenants.
//!
//! Everything here is time-explicit (methods take `now: Instant`) and
//! single-threaded; the reactor wraps it in its own mutex. None of it
//! affects answer content — the same request answers bit-identically
//! whatever tenant, weight or priority it arrives under.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::time::Instant;

/// The tenant name used when a request carries none.
pub const DEFAULT_TENANT: &str = "default";

/// The priority assumed when a request carries none.
pub const DEFAULT_PRIORITY: u8 = 0;

/// DRR quantum per unit of weight, in evaluation tokens: how much
/// deficit a weight-1 tenant gains per rotation. Small enough that a
/// rotation stays fine-grained, large enough that a typical smoke-sized
/// job (a few hundred evaluations) is served within a few rotations.
const QUANTUM_PER_WEIGHT: u64 = 256;

/// One tenant's QoS policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Weighted-fair-queueing weight (≥ 1): the tenant's long-run share
    /// of search-worker throughput relative to other backlogged
    /// tenants.
    pub weight: u32,
    /// Highest priority the tenant may request; a request asking for
    /// more is silently clamped, so no tenant can outrank its policy.
    pub priority_ceiling: u8,
    /// Evaluation-token refill rate, per second (`None` = unmetered:
    /// the tenant has no budget and is never answered
    /// `BudgetExhausted`).
    pub evals_per_sec: Option<f64>,
    /// Token-bucket capacity, in evaluations: the burst a tenant can
    /// spend after sitting idle. Floored to 1 so a metered tenant can
    /// always eventually admit a request.
    pub burst: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            priority_ceiling: u8::MAX,
            evals_per_sec: None,
            burst: 1.0,
        }
    }
}

impl TenantPolicy {
    /// The priority a request under this policy is actually scheduled
    /// at: the requested priority clamped to the ceiling.
    pub fn effective_priority(&self, requested: Option<u8>) -> u8 {
        requested
            .unwrap_or(DEFAULT_PRIORITY)
            .min(self.priority_ceiling)
    }

    /// The DRR deficit this tenant gains per rotation.
    fn quantum(&self) -> u64 {
        u64::from(self.weight.max(1)) * QUANTUM_PER_WEIGHT
    }

    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("policy object", value));
        }
        let mut policy = TenantPolicy::default();
        if let Some(weight) = value.get("weight") {
            let weight = weight
                .as_u64()
                .filter(|&w| w >= 1)
                .ok_or_else(|| DeError::new("`weight` must be an integer ≥ 1"))?;
            policy.weight =
                u32::try_from(weight).map_err(|_| DeError::new("`weight` must fit in 32 bits"))?;
        }
        if let Some(ceiling) = value.get("priority_ceiling") {
            let ceiling = ceiling
                .as_u64()
                .and_then(|c| u8::try_from(c).ok())
                .ok_or_else(|| DeError::new("`priority_ceiling` must be an integer in 0..=255"))?;
            policy.priority_ceiling = ceiling;
        }
        if let Some(rate) = value.get("evals_per_sec") {
            if *rate != Value::Null {
                let rate = rate
                    .as_f64()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| DeError::new("`evals_per_sec` must be a positive number"))?;
                policy.evals_per_sec = Some(rate);
            }
        }
        if let Some(burst) = value.get("burst") {
            let burst = burst
                .as_f64()
                .filter(|b| b.is_finite() && *b >= 0.0)
                .ok_or_else(|| DeError::new("`burst` must be a non-negative number"))?;
            policy.burst = burst.max(1.0);
        }
        Ok(policy)
    }
}

impl Serialize for TenantPolicy {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("weight".to_string(), Value::UInt(u64::from(self.weight))),
            (
                "priority_ceiling".to_string(),
                Value::UInt(u64::from(self.priority_ceiling)),
            ),
            (
                "evals_per_sec".to_string(),
                match self.evals_per_sec {
                    Some(rate) => Value::Float(rate),
                    None => Value::Null,
                },
            ),
            ("burst".to_string(), Value::Float(self.burst)),
        ])
    }
}

/// The server-side tenant policy table: named policies plus the default
/// applied to every unnamed tenant. With no configuration every tenant
/// shares the default policy — weight 1, no ceiling, no budget — which
/// reduces the whole QoS layer to the single-tenant behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantPolicyTable {
    default: TenantPolicy,
    tenants: Vec<(String, TenantPolicy)>,
}

impl TenantPolicyTable {
    /// A table where every tenant gets `default`.
    pub fn with_default(default: TenantPolicy) -> Self {
        TenantPolicyTable {
            default,
            tenants: Vec::new(),
        }
    }

    /// Sets one tenant's policy (replacing any previous one).
    pub fn insert(&mut self, tenant: impl Into<String>, policy: TenantPolicy) {
        let tenant = tenant.into();
        match self.tenants.iter_mut().find(|(name, _)| *name == tenant) {
            Some((_, existing)) => *existing = policy,
            None => self.tenants.push((tenant, policy)),
        }
    }

    /// The policy governing one tenant: its named entry, else the
    /// default.
    pub fn policy_for(&self, tenant: &str) -> &TenantPolicy {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map_or(&self.default, |(_, policy)| policy)
    }

    /// The default policy (what unnamed tenants get).
    pub fn default_policy(&self) -> &TenantPolicy {
        &self.default
    }

    /// The explicitly configured tenants, in configuration order.
    pub fn configured_tenants(&self) -> impl Iterator<Item = &str> {
        self.tenants.iter().map(|(name, _)| name.as_str())
    }

    /// Parses a `--tenant-config` JSON document:
    ///
    /// ```json
    /// {
    ///   "default": { "weight": 1 },
    ///   "tenants": {
    ///     "noisy": { "weight": 1, "evals_per_sec": 50, "burst": 200 },
    ///     "gold":  { "weight": 8, "priority_ceiling": 10 }
    ///   }
    /// }
    /// ```
    ///
    /// Both top-level keys and every policy field are optional; omitted
    /// fields keep their [`TenantPolicy::default`] values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str::<TenantPolicyTable>(text).map_err(|e| e.to_string())
    }
}

impl Serialize for TenantPolicyTable {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("default".to_string(), self.default.to_value()),
            (
                "tenants".to_string(),
                Value::Map(
                    self.tenants
                        .iter()
                        .map(|(name, policy)| (name.clone(), policy.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for TenantPolicyTable {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("tenant-config object", value));
        }
        let default = match value.get("default") {
            Some(policy) => TenantPolicy::from_value(policy)
                .map_err(|e| DeError::new(format!("default policy: {e}")))?,
            None => TenantPolicy::default(),
        };
        let mut table = TenantPolicyTable::with_default(default);
        if let Some(tenants) = value.get("tenants") {
            let entries = tenants
                .as_map()
                .ok_or_else(|| DeError::expected("`tenants` object", tenants))?;
            for (name, policy) in entries {
                let policy = TenantPolicy::from_value(policy)
                    .map_err(|e| DeError::new(format!("tenant `{name}`: {e}")))?;
                table.insert(name.clone(), policy);
            }
        }
        Ok(table)
    }
}

/// A token bucket metering one tenant's evaluation spend.
///
/// Time is explicit (every method takes `now`) so the bucket is exactly
/// testable; refills are continuous at `rate` tokens per second up to
/// `burst`. Admission only requires a *positive* balance — the debit is
/// the search's actual `evaluations_performed`, charged after the
/// answer, so the balance can go negative and the tenant pays the
/// overdraft off before being admitted again.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        let burst = burst.max(1.0);
        TokenBucket {
            tokens: burst,
            rate: rate.max(f64::MIN_POSITIVE),
            burst,
            last_refill: now,
        }
    }

    /// The bucket a policy calls for (`None` when the policy is
    /// unmetered).
    pub fn for_policy(policy: &TenantPolicy, now: Instant) -> Option<Self> {
        policy
            .evals_per_sec
            .map(|rate| TokenBucket::new(rate, policy.burst, now))
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
    }

    /// The current balance (negative while paying off an overdraft).
    pub fn balance(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Admits a request when the balance is positive; otherwise returns
    /// the estimated wait, in milliseconds, until it will be.
    ///
    /// # Errors
    ///
    /// Returns `Err(retry_after_ms)` when the bucket is exhausted.
    pub fn admit(&mut self, now: Instant) -> Result<(), u64> {
        self.refill(now);
        if self.tokens > 0.0 {
            return Ok(());
        }
        // Time until the balance crosses zero (plus one token of slack
        // so an immediate retry at the hinted time is admitted), rounded
        // up so the hint never undershoots.
        let deficit = 1.0 - self.tokens;
        let millis = (deficit / self.rate * 1e3).ceil();
        Err(if millis >= u64::MAX as f64 {
            u64::MAX
        } else {
            (millis as u64).max(1)
        })
    }

    /// Charges the actual evaluation spend of an answered request.
    pub fn debit(&mut self, evaluations: usize, now: Instant) {
        self.refill(now);
        self.tokens -= evaluations as f64;
    }
}

/// One queued job with its DRR price and scheduling priority.
#[derive(Debug)]
struct QueuedJob<T> {
    priority: u8,
    cost: u64,
    job: T,
}

/// One tenant's queue state inside a [`DrrQueue`].
#[derive(Debug)]
struct TenantLane<T> {
    tenant: String,
    quantum: u64,
    deficit: u64,
    jobs: VecDeque<QueuedJob<T>>,
}

/// A deficit-round-robin weighted-fair queue over per-tenant lanes.
///
/// [`DrrQueue::pop`] serves the strictly highest-priority head job
/// first; among the tenants tied at that priority it runs textbook DRR:
/// each rotation a tenant's deficit grows by its quantum
/// (weight × [`QUANTUM_PER_WEIGHT`]), and a job is served once the
/// deficit covers its cost (estimated evaluations). With a single lane
/// — the unconfigured, single-tenant deployment — every `pop` serves
/// the head of that lane, i.e. the queue degenerates to exactly the
/// FIFO it replaced.
#[derive(Debug)]
pub struct DrrQueue<T> {
    lanes: Vec<TenantLane<T>>,
    /// Rotation order over lanes with queued jobs (indices into
    /// `lanes`; lanes are never removed so indices are stable).
    round: VecDeque<usize>,
    len: usize,
}

// Manual impl: the derive would needlessly bound `T: Default`.
impl<T> Default for DrrQueue<T> {
    fn default() -> Self {
        DrrQueue::new()
    }
}

impl<T> DrrQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DrrQueue {
            lanes: Vec::new(),
            round: VecDeque::new(),
            len: 0,
        }
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued jobs for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|lane| lane.tenant == tenant)
            .map_or(0, |lane| lane.jobs.len())
    }

    fn lane_index(&mut self, tenant: &str, policy: &TenantPolicy) -> usize {
        if let Some(index) = self.lanes.iter().position(|lane| lane.tenant == tenant) {
            return index;
        }
        self.lanes.push(TenantLane {
            tenant: tenant.to_string(),
            quantum: policy.quantum(),
            deficit: 0,
            jobs: VecDeque::new(),
        });
        self.lanes.len() - 1
    }

    fn enqueue_lane(&mut self, index: usize) {
        if !self.round.contains(&index) {
            self.round.push_back(index);
        }
    }

    /// Enqueues a job for `tenant` at `priority` with a DRR price of
    /// `cost` estimated evaluations. Within the lane, higher priority
    /// jobs go first; equal priorities keep FIFO order.
    pub fn push(&mut self, tenant: &str, policy: &TenantPolicy, priority: u8, cost: u64, job: T) {
        let index = self.lane_index(tenant, policy);
        let lane = &mut self.lanes[index];
        let position = lane
            .jobs
            .iter()
            .rposition(|queued| queued.priority >= priority)
            .map_or(0, |p| p + 1);
        lane.jobs.insert(
            position,
            QueuedJob {
                priority,
                cost: cost.max(1),
                job,
            },
        );
        self.len += 1;
        self.enqueue_lane(index);
    }

    /// Re-enqueues a preempted (paused) job at the front of its
    /// equal-priority peers, ahead of the lane's FIFO tail: a resumed
    /// search finishes before the tenant's newer jobs start, so pausing
    /// never reorders one tenant against itself. `cost` should be the
    /// *remaining* estimated evaluations.
    pub fn push_resume(
        &mut self,
        tenant: &str,
        policy: &TenantPolicy,
        priority: u8,
        cost: u64,
        job: T,
    ) {
        let index = self.lane_index(tenant, policy);
        let lane = &mut self.lanes[index];
        let position = lane
            .jobs
            .iter()
            .rposition(|queued| queued.priority > priority)
            .map_or(0, |p| p + 1);
        lane.jobs.insert(
            position,
            QueuedJob {
                priority,
                cost: cost.max(1),
                job,
            },
        );
        self.len += 1;
        self.enqueue_lane(index);
    }

    /// The highest priority among head jobs (`None` when empty) — what
    /// an arriving job must beat to justify preempting a worker.
    pub fn top_priority(&self) -> Option<u8> {
        self.round
            .iter()
            .filter_map(|&index| self.lanes[index].jobs.front())
            .map(|job| job.priority)
            .max()
    }

    /// Dequeues the next job under priority-then-DRR order, returning
    /// the owning tenant with it.
    pub fn pop(&mut self) -> Option<(String, T)> {
        let top = self.top_priority()?;
        loop {
            let index = *self.round.front().expect("non-empty queue has a round");
            let head_priority = self.lanes[index]
                .jobs
                .front()
                .expect("lanes in the round are non-empty")
                .priority;
            if head_priority < top {
                // Not competing at this priority: rotate past without
                // charging or spending deficit.
                self.round.rotate_left(1);
                continue;
            }
            let lane = &mut self.lanes[index];
            let cost = lane.jobs.front().expect("checked non-empty").cost;
            if lane.deficit >= cost {
                let served = lane.jobs.pop_front().expect("checked non-empty");
                lane.deficit -= cost;
                self.len -= 1;
                if lane.jobs.is_empty() {
                    // An emptied lane forfeits its deficit (standard
                    // DRR: deficit only accumulates while backlogged).
                    lane.deficit = 0;
                    self.round.retain(|&i| i != index);
                }
                // A backlogged lane keeps its turn while its deficit
                // lasts (no rotation): weight proportionality comes
                // from serving quantum's worth of jobs per visit, not
                // one job per visit.
                return Some((self.lanes[index].tenant.clone(), served.job));
            }
            lane.deficit += lane.quantum;
            self.round.rotate_left(1);
        }
    }

    /// Removes and returns every queued job (teardown path), in lane
    /// order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut jobs = Vec::with_capacity(self.len);
        for lane in &mut self.lanes {
            lane.deficit = 0;
            jobs.extend(lane.jobs.drain(..).map(|queued| queued.job));
        }
        self.round.clear();
        self.len = 0;
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn policy_table_parses_partial_json_and_defaults() {
        let table = TenantPolicyTable::from_json(
            r#"{
                "default": { "weight": 2 },
                "tenants": {
                    "noisy": { "weight": 1, "evals_per_sec": 50, "burst": 200 },
                    "gold": { "weight": 8, "priority_ceiling": 10 }
                }
            }"#,
        )
        .unwrap();
        assert_eq!(table.default_policy().weight, 2);
        assert_eq!(table.policy_for("unknown").weight, 2);
        let noisy = table.policy_for("noisy");
        assert_eq!(noisy.weight, 1);
        assert_eq!(noisy.evals_per_sec, Some(50.0));
        assert_eq!(noisy.burst, 200.0);
        let gold = table.policy_for("gold");
        assert_eq!(gold.weight, 8);
        assert_eq!(gold.priority_ceiling, 10);
        assert_eq!(gold.evals_per_sec, None, "unmetered unless configured");
        assert_eq!(
            table.configured_tenants().collect::<Vec<_>>(),
            vec!["noisy", "gold"]
        );

        let empty = TenantPolicyTable::from_json("{}").unwrap();
        assert_eq!(empty, TenantPolicyTable::default());
    }

    #[test]
    fn policy_table_round_trips_and_rejects_malformed_fields() {
        let mut table = TenantPolicyTable::with_default(TenantPolicy {
            weight: 3,
            ..TenantPolicy::default()
        });
        table.insert(
            "metered",
            TenantPolicy {
                weight: 2,
                priority_ceiling: 4,
                evals_per_sec: Some(10.0),
                burst: 64.0,
            },
        );
        let json = serde_json::to_string(&table).unwrap();
        assert_eq!(TenantPolicyTable::from_json(&json).unwrap(), table);

        assert!(TenantPolicyTable::from_json("[]").is_err());
        let error =
            TenantPolicyTable::from_json(r#"{"tenants": {"x": {"weight": 0}}}"#).unwrap_err();
        assert!(error.contains("tenant `x`"), "{error}");
        assert!(
            TenantPolicyTable::from_json(r#"{"default": {"evals_per_sec": -1}}"#).is_err(),
            "non-positive refill rates must be rejected"
        );
    }

    #[test]
    fn priority_is_clamped_to_the_ceiling() {
        let policy = TenantPolicy {
            priority_ceiling: 3,
            ..TenantPolicy::default()
        };
        assert_eq!(policy.effective_priority(None), 0);
        assert_eq!(policy.effective_priority(Some(2)), 2);
        assert_eq!(policy.effective_priority(Some(200)), 3);
    }

    #[test]
    fn token_bucket_admits_debits_and_hints_retry() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(100.0, 50.0, start);
        assert_eq!(bucket.balance(start), 50.0, "buckets start full");
        bucket.admit(start).unwrap();
        // The debit is the actual spend and may overdraw the bucket.
        bucket.debit(80, start);
        assert_eq!(bucket.balance(start), -30.0);
        let retry = bucket.admit(start).unwrap_err();
        // 31 tokens short at 100/s → 310 ms.
        assert_eq!(retry, 310);
        // After the hinted wait the bucket admits again.
        let later = start + Duration::from_millis(retry);
        bucket.admit(later).unwrap();
        // Refill is capped at the burst.
        let much_later = start + Duration::from_secs(3600);
        assert_eq!(bucket.balance(much_later), 50.0);
    }

    #[test]
    fn unmetered_policies_have_no_bucket() {
        let now = Instant::now();
        assert!(TokenBucket::for_policy(&TenantPolicy::default(), now).is_none());
        let metered = TenantPolicy {
            evals_per_sec: Some(5.0),
            ..TenantPolicy::default()
        };
        assert!(TokenBucket::for_policy(&metered, now).is_some());
    }

    #[test]
    fn single_lane_degenerates_to_fifo() {
        let policy = TenantPolicy::default();
        let mut queue = DrrQueue::new();
        for job in 0..5 {
            queue.push(DEFAULT_TENANT, &policy, DEFAULT_PRIORITY, 480, job);
        }
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, job)| job)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(queue.is_empty());
    }

    #[test]
    fn drr_serves_tenants_in_proportion_to_weight() {
        let light = TenantPolicy::default();
        let heavy = TenantPolicy {
            weight: 3,
            ..TenantPolicy::default()
        };
        let mut queue = DrrQueue::new();
        for job in 0..12 {
            queue.push("heavy", &heavy, DEFAULT_PRIORITY, QUANTUM_PER_WEIGHT, job);
        }
        for job in 100..104 {
            queue.push("light", &light, DEFAULT_PRIORITY, QUANTUM_PER_WEIGHT, job);
        }
        // Serve the combined backlog; count the heavy tenant's share of
        // the first 8 pops (while both lanes stay backlogged).
        let mut heavy_share = 0;
        for _ in 0..8 {
            let (tenant, _) = queue.pop().unwrap();
            if tenant == "heavy" {
                heavy_share += 1;
            }
        }
        assert_eq!(
            heavy_share, 6,
            "weight 3 vs 1 must serve 3 of every 4 jobs at equal cost"
        );
        // The light tenant is never starved: its jobs surface among the
        // first pops, not after the heavy backlog drains.
        assert!(queue.tenant_depth("light") < 4);
    }

    #[test]
    fn a_weight_1_tenant_is_never_starved_by_a_flood() {
        let light = TenantPolicy::default();
        let flood = TenantPolicy {
            weight: 8,
            ..TenantPolicy::default()
        };
        let mut queue = DrrQueue::new();
        for job in 0..200 {
            queue.push("flood", &flood, DEFAULT_PRIORITY, 480, job);
        }
        queue.push("victim", &light, DEFAULT_PRIORITY, 480, 999);
        let position = std::iter::from_fn(|| queue.pop())
            .position(|(tenant, _)| tenant == "victim")
            .unwrap();
        assert!(
            position <= 20,
            "weight-1 job served at pop {position}, starved behind the flood"
        );
    }

    #[test]
    fn higher_priority_jobs_cut_across_lanes_and_within_them() {
        let policy = TenantPolicy::default();
        let mut queue = DrrQueue::new();
        queue.push("a", &policy, 0, 100, "a-low");
        queue.push("b", &policy, 0, 100, "b-low");
        queue.push("b", &policy, 5, 100, "b-high");
        assert_eq!(queue.top_priority(), Some(5));
        // Within lane b the priority-5 job jumped its earlier peer, and
        // across lanes it is served before every priority-0 head.
        let (tenant, job) = queue.pop().unwrap();
        assert_eq!((tenant.as_str(), job), ("b", "b-high"));
        let (_, job) = queue.pop().unwrap();
        assert!(job == "a-low" || job == "b-low");
    }

    #[test]
    fn resumed_jobs_precede_their_tenants_fifo_tail() {
        let policy = TenantPolicy::default();
        let mut queue = DrrQueue::new();
        queue.push("t", &policy, 0, 100, "queued-1");
        queue.push("t", &policy, 0, 100, "queued-2");
        queue.push_resume("t", &policy, 0, 40, "resumed");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, job)| job)).collect();
        assert_eq!(order, vec!["resumed", "queued-1", "queued-2"]);
    }

    #[test]
    fn drain_empties_every_lane() {
        let policy = TenantPolicy::default();
        let mut queue = DrrQueue::new();
        queue.push("a", &policy, 0, 10, 1);
        queue.push("b", &policy, 3, 10, 2);
        queue.push("a", &policy, 0, 10, 3);
        let mut drained = queue.drain();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }
}
