//! The service's telemetry hub: the metric registry wiring, the trace
//! ring and the knobs controlling both.
//!
//! [`ServiceTelemetry`] owns one [`MetricsRegistry`] and hands the
//! pipeline pre-registered handles (stage latency histograms, error
//! counters, lifetime totals), so the hot path never touches the
//! registry lock. The legacy [`PipelineStats`] serde shape is *derived*
//! from the registry here — per-stage `entered` is the stage histogram's
//! count, `busy_micros` its sum — so wire clients and JSON reports keep
//! their schema while quantiles become available underneath.

use crate::pipeline::{PipelineStage, PipelineStats, StageStats, STAGE_COUNT};
use mnc_telemetry::{
    Counter, Gauge, Histogram, LatencySummary, MetricKey, MetricsRegistry, MetricsSnapshot,
    RequestTrace, SpanRecorder, TraceRing,
};
use std::sync::Arc;

/// Stage latency histograms: `mnc_pipeline_stage_duration_nanos{stage=…}`.
pub(crate) const STAGE_DURATION_METRIC: &str = "mnc_pipeline_stage_duration_nanos";
/// Stage error counters: `mnc_pipeline_stage_errors_total{stage=…}`.
pub(crate) const STAGE_ERRORS_METRIC: &str = "mnc_pipeline_stage_errors_total";
/// End-to-end request latency histogram.
pub(crate) const REQUEST_DURATION_METRIC: &str = "mnc_request_duration_nanos";
/// Requests-per-batch histogram.
pub(crate) const BATCH_SIZE_METRIC: &str = "mnc_batch_size";

/// The serving-layer metric handles a front-end (the reactor server)
/// drives: connection and queue-depth gauges plus the admission-control
/// counters. Handed out pre-registered by
/// [`MappingService::serving_metrics`], so server hot paths touch only
/// atomics and the values land in the same registry snapshot /
/// [`PipelineStats`] as the pipeline's own counters.
///
/// [`MappingService::serving_metrics`]: crate::service::MappingService::serving_metrics
#[derive(Debug, Clone)]
pub struct ServingMetrics {
    /// Open wire connections (`mnc_server_connections`).
    pub connections: Arc<Gauge>,
    /// Requests queued for the search-worker pool
    /// (`mnc_server_queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Requests shed by admission control
    /// (`mnc_shed_requests_total`).
    pub shed_requests: Arc<Counter>,
    /// Requests answered by joining an identical in-flight search
    /// instead of enqueueing their own
    /// (`mnc_inflight_coalesced_total`).
    pub inflight_coalesced: Arc<Counter>,
    /// Running searches cancelled by the serving layer's watchdog —
    /// request deadline or per-job wall-clock cap
    /// (`mnc_search_cancellations_total`). Each cancelled search still
    /// answers with its best-so-far partial front.
    pub search_cancellations: Arc<Counter>,
}

/// Per-tenant serving metric handles, every one labeled
/// `tenant="<name>"` in the Prometheus exposition. Handed out
/// create-on-first-use by
/// [`MappingService::tenant_metrics`] — the registry returns the same
/// underlying atomics for the same tenant, so a serving layer may
/// fetch them once per tenant and cache the clones.
///
/// [`MappingService::tenant_metrics`]: crate::service::MappingService::tenant_metrics
#[derive(Debug, Clone)]
pub struct TenantMetrics {
    /// Requests admitted past QoS admission control
    /// (`mnc_tenant_admitted_total`).
    pub admitted: Arc<Counter>,
    /// Requests shed for this tenant — queue overflow under
    /// weighted-fair queueing (`mnc_tenant_shed_total`).
    pub shed: Arc<Counter>,
    /// Running searches of this tenant paused so a higher-priority
    /// arrival could take the worker
    /// (`mnc_tenant_preemptions_total`).
    pub preemptions: Arc<Counter>,
    /// Requests answered `BudgetExhausted` because the tenant's token
    /// bucket ran dry (`mnc_tenant_budget_exhausted_total`).
    pub budget_exhausted: Arc<Counter>,
    /// Current evaluation-token balance (negative while paying off an
    /// overdraft; unmetered tenants never set it)
    /// (`mnc_tenant_tokens`).
    pub tokens: Arc<Gauge>,
    /// Requests queued in this tenant's DRR lane
    /// (`mnc_tenant_queue_depth`).
    pub queue_depth: Arc<Gauge>,
}

/// How much observability the service records. Histograms and lifetime
/// counters are always on (they replace the former ad-hoc totals at the
/// same per-request cost); the knobs govern the trace ring and the
/// per-generation search stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Finished traces retained in the recent ring (0 disables tracing
    /// entirely — no [`SpanRecorder`] is allocated per request).
    pub trace_capacity: usize,
    /// Slow traces retained in the outlier ring.
    pub slow_trace_capacity: usize,
    /// Threshold (µs) above which a request's full trace is also kept
    /// in the outlier ring (0 disables the slow ring).
    pub slow_threshold_micros: u64,
    /// Whether searches run with a per-generation telemetry sink so
    /// traces carry the generation stream.
    pub search_generations: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 64,
            slow_trace_capacity: 16,
            slow_threshold_micros: 250_000,
            search_generations: true,
        }
    }
}

impl TelemetryConfig {
    /// Everything optional off: no trace retention, no per-generation
    /// search stream. The baseline the `telemetry_overhead` bench
    /// compares the default against.
    #[must_use]
    pub fn minimal() -> Self {
        TelemetryConfig {
            trace_capacity: 0,
            slow_trace_capacity: 0,
            slow_threshold_micros: 0,
            search_generations: false,
        }
    }
}

/// The pre-wired metric handles and trace ring one [`MappingService`]
/// owns.
///
/// [`MappingService`]: crate::service::MappingService
#[derive(Debug)]
pub(crate) struct ServiceTelemetry {
    config: TelemetryConfig,
    registry: MetricsRegistry,
    pub(crate) stage_duration: [Arc<Histogram>; STAGE_COUNT],
    pub(crate) stage_errors: [Arc<Counter>; STAGE_COUNT],
    pub(crate) request_duration: Arc<Histogram>,
    pub(crate) batch_size: Arc<Histogram>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) coalesced_requests: Arc<Counter>,
    pub(crate) evaluator_pool_hits: Arc<Counter>,
    pub(crate) evaluator_builds: Arc<Counter>,
    pub(crate) warm_seeds_gathered: Arc<Counter>,
    pub(crate) searches_run: Arc<Counter>,
    pub(crate) search_generations: Arc<Counter>,
    pub(crate) evaluations_scheduled: Arc<Counter>,
    pub(crate) evaluations_performed: Arc<Counter>,
    pub(crate) elites_recorded: Arc<Counter>,
    pub(crate) fast_path_answered: Arc<Counter>,
    pub(crate) deadline_misses: Arc<Counter>,
    pub(crate) partial_responses: Arc<Counter>,
    pub(crate) serving: ServingMetrics,
    traces: TraceRing,
}

impl ServiceTelemetry {
    pub(crate) fn new(config: TelemetryConfig) -> Self {
        let registry = MetricsRegistry::new();
        let stage_duration = std::array::from_fn(|index| {
            registry.histogram(MetricKey::labeled(
                STAGE_DURATION_METRIC,
                "stage",
                PipelineStage::ALL[index].name(),
            ))
        });
        let stage_errors = std::array::from_fn(|index| {
            registry.counter(MetricKey::labeled(
                STAGE_ERRORS_METRIC,
                "stage",
                PipelineStage::ALL[index].name(),
            ))
        });
        let counter = |name: &str| registry.counter(MetricKey::plain(name));
        ServiceTelemetry {
            stage_duration,
            stage_errors,
            request_duration: registry.histogram(MetricKey::plain(REQUEST_DURATION_METRIC)),
            batch_size: registry.histogram(MetricKey::plain(BATCH_SIZE_METRIC)),
            requests: counter("mnc_requests_total"),
            batches: counter("mnc_batches_total"),
            coalesced_requests: counter("mnc_coalesced_requests_total"),
            evaluator_pool_hits: counter("mnc_evaluator_pool_hits_total"),
            evaluator_builds: counter("mnc_evaluator_builds_total"),
            warm_seeds_gathered: counter("mnc_warm_seeds_gathered_total"),
            searches_run: counter("mnc_searches_total"),
            search_generations: counter("mnc_search_generations_total"),
            evaluations_scheduled: counter("mnc_evaluations_scheduled_total"),
            evaluations_performed: counter("mnc_evaluations_performed_total"),
            elites_recorded: counter("mnc_elites_recorded_total"),
            fast_path_answered: counter("mnc_fast_path_answered_total"),
            deadline_misses: counter("mnc_deadline_misses_total"),
            partial_responses: counter("mnc_partial_responses_total"),
            serving: ServingMetrics {
                connections: registry.gauge(MetricKey::plain("mnc_server_connections")),
                queue_depth: registry.gauge(MetricKey::plain("mnc_server_queue_depth")),
                shed_requests: counter("mnc_shed_requests_total"),
                inflight_coalesced: counter("mnc_inflight_coalesced_total"),
                search_cancellations: counter("mnc_search_cancellations_total"),
            },
            traces: TraceRing::new(
                config.trace_capacity,
                config.slow_trace_capacity,
                config.slow_threshold_micros.saturating_mul(1_000),
            ),
            registry,
            config,
        }
    }

    pub(crate) fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Whether searches should run with a generation sink attached.
    pub(crate) fn search_telemetry(&self) -> bool {
        self.config.search_generations
    }

    /// A recorder for one request, when tracing is enabled.
    pub(crate) fn begin_trace(&self, model: &str, platform: &str) -> Option<SpanRecorder> {
        self.traces
            .enabled()
            .then(|| SpanRecorder::new(self.traces.next_id(), model, platform))
    }

    /// Freezes and retains a request's trace.
    pub(crate) fn finish_trace(&self, recorder: Option<SpanRecorder>, error: Option<String>) {
        if let Some(recorder) = recorder {
            self.traces
                .push(recorder.finish(error, self.traces.slow_threshold_nanos()));
        }
    }

    pub(crate) fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Mints (or re-fetches) the labeled per-tenant metric handles for
    /// `tenant`. The registry deduplicates by (name, label) key, so
    /// calling this twice for one tenant returns clones of the same
    /// atomics.
    pub(crate) fn tenant_metrics(&self, tenant: &str) -> TenantMetrics {
        let counter = |name: &str| {
            self.registry
                .counter(MetricKey::labeled(name, "tenant", tenant))
        };
        let gauge = |name: &str| {
            self.registry
                .gauge(MetricKey::labeled(name, "tenant", tenant))
        };
        TenantMetrics {
            admitted: counter("mnc_tenant_admitted_total"),
            shed: counter("mnc_tenant_shed_total"),
            preemptions: counter("mnc_tenant_preemptions_total"),
            budget_exhausted: counter("mnc_tenant_budget_exhausted_total"),
            tokens: gauge("mnc_tenant_tokens"),
            queue_depth: gauge("mnc_tenant_queue_depth"),
        }
    }

    /// The legacy counter view, derived from the registry: `entered` is
    /// the stage histogram's count (every entry records a duration,
    /// errors included), `busy_micros` its nanosecond sum.
    pub(crate) fn pipeline_stats(&self) -> PipelineStats {
        PipelineStats {
            stages: PipelineStage::ALL
                .iter()
                .map(|stage| StageStats {
                    stage: stage.name().to_string(),
                    entered: self.stage_duration[stage.index()].count(),
                    errors: self.stage_errors[stage.index()].value(),
                    busy_micros: self.stage_duration[stage.index()].sum() / 1_000,
                })
                .collect(),
            requests: self.requests.value(),
            batches: self.batches.value(),
            coalesced_requests: self.coalesced_requests.value(),
            evaluator_pool_hits: self.evaluator_pool_hits.value(),
            evaluator_builds: self.evaluator_builds.value(),
            warm_seeds_gathered: self.warm_seeds_gathered.value(),
            searches_run: self.searches_run.value(),
            evaluations_scheduled: self.evaluations_scheduled.value(),
            evaluations_performed: self.evaluations_performed.value(),
            elites_recorded: self.elites_recorded.value(),
            fast_path_answered: self.fast_path_answered.value(),
            shed_requests: self.serving.shed_requests.value(),
            inflight_coalesced: self.serving.inflight_coalesced.value(),
            deadline_misses: self.deadline_misses.value(),
            partial_responses: self.partial_responses.value(),
            search_cancellations: self.serving.search_cancellations.value(),
        }
    }

    /// Snapshot of every registered metric, plus trace-ring occupancy
    /// gauges. Callers append subsystem state (cache, archive) on top.
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.registry.snapshot();
        let (recent, slow) = self.traces.retained();
        snapshot.push_gauge(MetricKey::plain("mnc_traces_retained"), recent as f64);
        snapshot.push_gauge(MetricKey::plain("mnc_slow_traces_retained"), slow as f64);
        snapshot
    }

    /// Per-stage latency digests, in stage order.
    pub(crate) fn stage_latency(&self) -> Vec<LatencySummary> {
        PipelineStage::ALL
            .iter()
            .map(|stage| {
                LatencySummary::from_snapshot(
                    stage.name(),
                    &self.stage_duration[stage.index()].snapshot(),
                )
            })
            .collect()
    }

    /// End-to-end request latency digest.
    pub(crate) fn request_latency(&self) -> LatencySummary {
        LatencySummary::from_snapshot("request", &self.request_duration.snapshot())
    }

    /// The slowest trace still retained.
    pub(crate) fn slowest_trace(&self) -> Option<Arc<RequestTrace>> {
        self.traces.slowest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_traces_and_minimal_does_not() {
        let full = ServiceTelemetry::new(TelemetryConfig::default());
        assert!(full.begin_trace("m", "p").is_some());
        assert!(full.search_telemetry());

        let minimal = ServiceTelemetry::new(TelemetryConfig::minimal());
        assert!(minimal.begin_trace("m", "p").is_none());
        assert!(!minimal.search_telemetry());
        // Passing `None` through is a no-op, which is exactly what the
        // pipeline does when tracing is off.
        minimal.finish_trace(None, None);
        assert_eq!(minimal.traces().retained(), (0, 0));
    }

    #[test]
    fn pipeline_stats_derive_from_the_registry() {
        let telemetry = ServiceTelemetry::new(TelemetryConfig::default());
        let search = PipelineStage::Search.index();
        telemetry.stage_duration[search].record(2_500);
        telemetry.stage_duration[search].record(1_500);
        telemetry.stage_errors[search].inc();
        telemetry.requests.inc();

        let stats = telemetry.pipeline_stats();
        assert_eq!(stats.stage(PipelineStage::Search).entered, 2);
        assert_eq!(stats.stage(PipelineStage::Search).errors, 1);
        assert_eq!(stats.stage(PipelineStage::Search).busy_micros, 4);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.stage(PipelineStage::Normalize).entered, 0);
    }

    #[test]
    fn tenant_metrics_share_atomics_per_tenant_and_label_the_snapshot() {
        let telemetry = ServiceTelemetry::new(TelemetryConfig::default());
        let acme = telemetry.tenant_metrics("acme");
        acme.shed.inc();
        // A second mint for the same tenant sees the same counters…
        telemetry.tenant_metrics("acme").shed.inc();
        assert_eq!(acme.shed.value(), 2);
        // …while another tenant gets its own.
        let other = telemetry.tenant_metrics("other");
        other.shed.inc();
        assert_eq!(acme.shed.value(), 2);
        acme.tokens.set(12.0);

        let snapshot = telemetry.metrics_snapshot();
        assert_eq!(
            snapshot.labeled_counter_value("mnc_tenant_shed_total", "tenant", "acme"),
            Some(2)
        );
        assert_eq!(
            snapshot.labeled_counter_value("mnc_tenant_shed_total", "tenant", "other"),
            Some(1)
        );
        let wanted = MetricKey::labeled("mnc_tenant_tokens", "tenant", "acme");
        assert_eq!(
            snapshot
                .gauges
                .iter()
                .find(|sample| sample.key == wanted)
                .map(|sample| sample.value),
            Some(12.0)
        );
    }

    #[test]
    fn snapshot_carries_ring_gauges_and_stage_histograms() {
        let telemetry = ServiceTelemetry::new(TelemetryConfig::default());
        telemetry.stage_duration[0].record(900);
        let snapshot = telemetry.metrics_snapshot();
        assert_eq!(
            snapshot
                .labeled_histogram(STAGE_DURATION_METRIC, "stage", "normalize")
                .map(|h| h.count),
            Some(1)
        );
        assert!(snapshot
            .gauges
            .iter()
            .any(|gauge| gauge.key.name == "mnc_traces_retained"));
        let latency = telemetry.stage_latency();
        assert_eq!(latency.len(), STAGE_COUNT);
        assert_eq!(latency[0].count, 1);
        assert!(latency[0].p50_micros > 0.0);
    }
}
