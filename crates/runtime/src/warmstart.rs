//! Surrogate-guided warm start for mapping searches.
//!
//! A service that has answered a request for a model has already paid to
//! discover good genomes for it; a later request for the *same model* —
//! on the same board or a neighbouring one with the same stage count —
//! should not start its search from scratch. This module supplies the two
//! pieces `MappingService` plumbs together when a request opts in via
//! `MappingRequest::warm_start`:
//!
//! * [`EliteArchive`] — a bounded, (model, platform)-keyed store of the
//!   Pareto-elite genomes of answered requests. Genomes are `Arc`-shared
//!   with the response fronts they came from, so archiving costs
//!   reference-count bumps, not clones.
//! * [`SurrogateRanker`] — an `mnc_predictor` latency/energy surrogate
//!   trained per platform. Candidate seeds are re-ranked by the
//!   surrogate's predicted cost on the *target* platform before they are
//!   handed to `MappingSearch::with_seeds`, so elites learned on a
//!   neighbouring board enter the initial population in the order most
//!   promising for the board actually being mapped.
//!
//! Warm-starting trades the cold search's independence from service
//! history for convergence speed: the seeded generation 0 already contains
//! the best known genomes, so a stall-windowed search terminates in
//! measurably fewer evaluations with a front no worse than the cold one
//! (see the `search_fastpath` benchmark). With `warm_start` off nothing
//! here runs and responses stay bit-identical to a fresh service's.

use crate::error::RuntimeError;
use mnc_mpsoc::{Platform, WorkloadClass};
use mnc_nn::{Network, SliceCost};
use mnc_optim::Genome;
use mnc_predictor::{
    DatasetConfig, GbtConfig, PerformancePredictor, PredictorError, QueryFeatures,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Version stamp of the on-disk archive snapshot format; bumped on any
/// incompatible change so a stale file fails loudly instead of seeding
/// searches with misdecoded genomes.
pub const ARCHIVE_SNAPSHOT_VERSION: u32 = 1;

/// A serializable point-in-time copy of an [`EliteArchive`] — what
/// [`EliteArchive::snapshot_to`] writes and [`EliteArchive::load_from`]
/// restores across service restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveSnapshot {
    /// Format version ([`ARCHIVE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Every archived (model, platform) shape, sorted by name so equal
    /// archives serialize byte-identically.
    pub shapes: Vec<ArchiveShape>,
}

/// The archived elites of one (model, platform) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveShape {
    /// Model preset name.
    pub model: String,
    /// Platform preset name.
    pub platform: String,
    /// Elite genomes in resident order (newest first), so restoring
    /// reproduces the archive's seed order exactly.
    pub genomes: Vec<Genome>,
}

/// Upper bound on archived elite genomes per (model, platform) pair.
/// Fronts are typically a handful of points; the bound only matters for a
/// service that answers many distinct-seed requests for one shape.
pub const MAX_ELITES_PER_SHAPE: usize = 32;

/// How [`EliteArchive::load_or_quarantine`] resolved a startup load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveLoad {
    /// The snapshot restored cleanly, carrying this many genomes.
    Restored(usize),
    /// No snapshot file existed; the archive starts cold.
    Missing,
    /// The file was corrupt (torn write, malformed JSON, version skew);
    /// it was moved aside and the archive starts cold.
    Quarantined {
        /// Where the corrupt file was moved (`<name>.corrupt`).
        quarantined_to: std::path::PathBuf,
        /// Why it could not be restored.
        reason: String,
    },
}

/// Deterministic benchmark-dataset settings for the per-platform
/// surrogate: ranking must not wobble between equal requests, so the
/// dataset seed is fixed and the full sample set trains (no held-out
/// split — the analytic model the dataset is drawn from is the oracle
/// next door, validation would only shrink the training set).
fn ranker_dataset() -> DatasetConfig {
    DatasetConfig {
        samples: 512,
        seed: 0x5eed_ca2e,
        noise_std: 0.02,
        train_fraction: 1.0,
    }
}

/// platform → elite genomes (newest first) for one model, each stored
/// with its fingerprint so recording and seeding never re-hash resident
/// genomes.
type PlatformElites = HashMap<String, Vec<(u64, Arc<Genome>)>>;

/// A bounded, (model, platform)-keyed store of Pareto-elite genomes from
/// answered requests — the seed pool for warm-started searches.
#[derive(Debug, Default)]
pub struct EliteArchive {
    /// model → platform → elite genomes, newest first.
    entries: Mutex<HashMap<String, PlatformElites>>,
}

impl EliteArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        EliteArchive::default()
    }

    /// Records the elite genomes of one answered request, newest first,
    /// deduplicated by fingerprint and truncated to
    /// [`MAX_ELITES_PER_SHAPE`].
    pub fn record<I>(&self, model: &str, platform: &str, genomes: I)
    where
        I: IntoIterator<Item = Arc<Genome>>,
    {
        let mut entries = self
            .entries
            .lock()
            .expect("elite archive lock never poisoned");
        let shape = entries
            .entry(model.to_string())
            .or_default()
            .entry(platform.to_string())
            .or_default();
        let mut fresh: Vec<(u64, Arc<Genome>)> = Vec::new();
        for genome in genomes {
            // Incoming fingerprints are computed once; resident ones were
            // stored when they were recorded.
            let fingerprint = genome.fingerprint();
            if fresh.iter().any(|(resident, _)| *resident == fingerprint)
                || shape.iter().any(|(resident, _)| *resident == fingerprint)
            {
                continue;
            }
            fresh.push((fingerprint, genome));
        }
        // Newest results go to the front so truncation drops the oldest.
        fresh.extend(shape.iter().cloned());
        fresh.truncate(MAX_ELITES_PER_SHAPE);
        *shape = fresh;
    }

    /// Seed candidates for a request: elites recorded for the same model,
    /// same-platform entries first, then neighbouring platforms (sorted by
    /// name for determinism) whose genomes encode the same stage count.
    pub fn seeds_for(&self, model: &str, platform: &str, num_stages: usize) -> Vec<Arc<Genome>> {
        let entries = self
            .entries
            .lock()
            .expect("elite archive lock never poisoned");
        let Some(platforms) = entries.get(model) else {
            return Vec::new();
        };
        let mut seeds: Vec<Arc<Genome>> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        let mut push_compatible = |genomes: &[(u64, Arc<Genome>)]| {
            for (fingerprint, genome) in genomes {
                if genome.num_stages() != num_stages {
                    continue;
                }
                if seen.contains(fingerprint) {
                    continue;
                }
                seen.push(*fingerprint);
                seeds.push(Arc::clone(genome));
            }
        };
        if let Some(same) = platforms.get(platform) {
            push_compatible(same);
        }
        let mut neighbours: Vec<&String> = platforms
            .keys()
            .filter(|name| name.as_str() != platform)
            .collect();
        neighbours.sort();
        for name in neighbours {
            push_compatible(&platforms[name]);
        }
        seeds
    }

    /// A serializable copy of the archive, shapes sorted by
    /// (model, platform) so equal archives snapshot byte-identically.
    pub fn snapshot(&self) -> ArchiveSnapshot {
        let entries = self
            .entries
            .lock()
            .expect("elite archive lock never poisoned");
        let mut shapes: Vec<ArchiveShape> = entries
            .iter()
            .flat_map(|(model, platforms)| {
                platforms.iter().map(|(platform, genomes)| ArchiveShape {
                    model: model.clone(),
                    platform: platform.clone(),
                    genomes: genomes.iter().map(|(_, g)| (**g).clone()).collect(),
                })
            })
            .collect();
        shapes.sort_by(|a, b| (&a.model, &a.platform).cmp(&(&b.model, &b.platform)));
        ArchiveSnapshot {
            version: ARCHIVE_SNAPSHOT_VERSION,
            shapes,
        }
    }

    /// Merges a snapshot into the archive (duplicates dropped, per-shape
    /// bound enforced), returning the number of genomes the snapshot
    /// carried. Restoring into an empty archive reproduces the snapshotted
    /// seed order exactly, so a restarted service warm-starts exactly like
    /// the process that wrote the snapshot.
    pub fn restore(&self, snapshot: &ArchiveSnapshot) -> usize {
        let mut restored = 0;
        for shape in &snapshot.shapes {
            restored += shape.genomes.len();
            self.record(
                &shape.model,
                &shape.platform,
                shape.genomes.iter().cloned().map(Arc::new),
            );
        }
        restored
    }

    /// Writes the archive as pretty-printed JSON to `path` (the restart
    /// persistence file `mnc-server --archive-dir` maintains), returning
    /// the number of genomes written.
    ///
    /// Crash-safe: the JSON is written to a sibling `<name>.tmp` file,
    /// fsynced, then atomically renamed over the target, so a process
    /// killed mid-snapshot leaves the previous snapshot intact — never a
    /// torn half-written file under the real name.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] when serialization or the
    /// write fails (the temp file is cleaned up on failure).
    pub fn snapshot_to(&self, path: &Path) -> Result<usize, RuntimeError> {
        let snapshot = self.snapshot();
        let mut json =
            serde_json::to_string_pretty(&snapshot).map_err(|e| RuntimeError::Persistence {
                path: path.display().to_string(),
                reason: format!("serializing archive snapshot: {e}"),
            })?;
        crate::faults::corrupt_snapshot_json(&mut json);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let written = (|| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, json.as_bytes())?;
            // Flush file contents to disk before the rename makes them
            // visible under the real name.
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            // Best-effort directory sync so the rename itself survives a
            // power loss; not every filesystem supports it, so failures
            // are ignored.
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Ok(dir) = std::fs::File::open(dir) {
                    let _ = dir.sync_all();
                }
            }
            Ok(())
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(RuntimeError::Persistence {
                path: path.display().to_string(),
                reason: format!("writing archive snapshot: {e}"),
            });
        }
        Ok(snapshot.shapes.iter().map(|s| s.genomes.len()).sum())
    }

    /// Loads a snapshot written by [`EliteArchive::snapshot_to`] and
    /// merges it into the archive, returning the number of genomes the
    /// file carried.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] for unreadable files,
    /// malformed JSON, or a snapshot written by an incompatible format
    /// version.
    pub fn load_from(&self, path: &Path) -> Result<usize, RuntimeError> {
        let text = std::fs::read_to_string(path).map_err(|e| RuntimeError::Persistence {
            path: path.display().to_string(),
            reason: format!("reading archive snapshot: {e}"),
        })?;
        let snapshot: ArchiveSnapshot =
            serde_json::from_str(&text).map_err(|e| RuntimeError::Persistence {
                path: path.display().to_string(),
                reason: format!("parsing archive snapshot: {e}"),
            })?;
        if snapshot.version != ARCHIVE_SNAPSHOT_VERSION {
            return Err(RuntimeError::Persistence {
                path: path.display().to_string(),
                reason: format!(
                    "archive snapshot version {} is not the supported {}",
                    snapshot.version, ARCHIVE_SNAPSHOT_VERSION
                ),
            });
        }
        Ok(self.restore(&snapshot))
    }

    /// The resilient startup load: a missing file starts cold, a corrupt
    /// or version-skewed file is moved aside to `<name>.corrupt` (so the
    /// evidence survives for inspection and the next snapshot starts
    /// clean) and the archive starts cold, and only a quarantine that
    /// itself fails (e.g. an unwritable directory) is an error — a torn
    /// snapshot from a crash mid-write must never keep the service from
    /// booting.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Persistence`] only when a corrupt file
    /// cannot be moved to its quarantine name.
    pub fn load_or_quarantine(&self, path: &Path) -> Result<ArchiveLoad, RuntimeError> {
        if !path.exists() {
            return Ok(ArchiveLoad::Missing);
        }
        match self.load_from(path) {
            Ok(genomes) => Ok(ArchiveLoad::Restored(genomes)),
            Err(RuntimeError::Persistence { reason, .. }) => {
                let mut quarantined = path.as_os_str().to_owned();
                quarantined.push(".corrupt");
                let quarantined = std::path::PathBuf::from(quarantined);
                std::fs::rename(path, &quarantined).map_err(|e| RuntimeError::Persistence {
                    path: path.display().to_string(),
                    reason: format!("quarantining corrupt archive snapshot: {e}"),
                })?;
                Ok(ArchiveLoad::Quarantined {
                    quarantined_to: quarantined,
                    reason,
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Total number of archived genomes across every shape.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("elite archive lock never poisoned")
            .values()
            .flat_map(|platforms| platforms.values())
            .map(Vec::len)
            .sum()
    }

    /// Whether the archive holds no genomes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-platform latency/energy surrogate that orders warm-start seed
/// candidates by their predicted cost on the target platform.
#[derive(Debug)]
pub struct SurrogateRanker {
    predictor: PerformancePredictor,
}

impl SurrogateRanker {
    /// Trains the surrogate on a deterministic benchmark dataset drawn
    /// from `platform`'s analytic model.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset cannot be generated or the
    /// gradient-boosted models fail to fit (empty platform).
    pub fn train(platform: &Platform) -> Result<Self, PredictorError> {
        let predictor =
            PerformancePredictor::train(platform, &ranker_dataset(), &GbtConfig::fast())?;
        Ok(SurrogateRanker { predictor })
    }

    /// The trained surrogate.
    pub fn predictor(&self) -> &PerformancePredictor {
        &self.predictor
    }

    /// Predicted scalar cost (total latency + total energy over all
    /// stages) of one genome on `platform`. `None` when the genome does
    /// not decode against (network, platform) — such seeds rank last.
    ///
    /// The per-stage workload is aggregated per [`WorkloadClass`] from the
    /// full-layer costs scaled by the genome's partition fractions — the
    /// same features the surrogate trained on, one query per non-empty
    /// (stage, class) pair instead of one per layer slice, so ranking a
    /// seed costs a handful of tree lookups rather than an evaluation.
    pub fn score(
        &self,
        genome: &Genome,
        network: &Network,
        platform: &Platform,
        layer_costs: &[SliceCost],
        layer_classes: &[WorkloadClass],
    ) -> Option<f64> {
        let config = genome.decode(network, platform).ok()?;
        let mut total = 0.0;
        for stage in 0..config.num_stages() {
            let cu_id = config.mapping.compute_unit(stage)?;
            let cu = platform.compute_unit(cu_id).ok()?;
            let level = config.dvfs.level(stage)?;
            let point = cu.dvfs().point(level).ok()?;

            let mut class_costs = [SliceCost::zero(); WorkloadClass::ALL.len()];
            for ((layer_id, _), (cost, class)) in
                network.iter().zip(layer_costs.iter().zip(layer_classes))
            {
                let fraction = config.partition.fraction(layer_id, stage);
                if fraction <= 0.0 {
                    continue;
                }
                let slot = &mut class_costs[class.index()];
                slot.macs += cost.macs * fraction;
                slot.flops += cost.flops * fraction;
                slot.weight_bytes += cost.weight_bytes * fraction;
                slot.input_bytes += cost.input_bytes * fraction;
                slot.output_bytes += cost.output_bytes * fraction;
            }
            for (class, cost) in WorkloadClass::ALL.iter().zip(&class_costs) {
                if cost.flops <= 0.0 && cost.total_bytes() <= 0.0 {
                    continue;
                }
                let (latency_ms, energy_mj) = self
                    .predictor
                    .predict(&QueryFeatures::new(*cost, *class, cu, point));
                total += latency_ms + energy_mj;
            }
        }
        Some(total)
    }

    /// Reorders `seeds` best-first by surrogate score (stable: equal
    /// scores keep their archive order; undecodable seeds sink to the
    /// end).
    pub fn rank(&self, seeds: &mut [Arc<Genome>], network: &Network, platform: &Platform) {
        if seeds.len() < 2 {
            return;
        }
        let layer_costs = network.layer_costs();
        let layer_classes: Vec<WorkloadClass> = network
            .iter()
            .map(|(_, layer)| WorkloadClass::from_layer(layer))
            .collect();
        let mut keyed: Vec<(f64, Arc<Genome>)> = seeds
            .iter()
            .map(|genome| {
                let score = self
                    .score(genome, network, platform, &layer_costs, &layer_classes)
                    .unwrap_or(f64::INFINITY);
                (score, Arc::clone(genome))
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (slot, (_, genome)) in seeds.iter_mut().zip(keyed) {
            *slot = genome;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, visformer_tiny, ModelPreset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn genomes(count: usize, seed: u64) -> (Network, Platform, Vec<Arc<Genome>>) {
        let network = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let mut rng = StdRng::seed_from_u64(seed);
        let genomes = (0..count)
            .map(|_| Arc::new(Genome::random(&network, &platform, &mut rng)))
            .collect();
        (network, platform, genomes)
    }

    #[test]
    fn archive_records_dedupes_and_bounds() {
        let (_, _, batch) = genomes(MAX_ELITES_PER_SHAPE + 10, 1);
        let archive = EliteArchive::new();
        assert!(archive.is_empty());
        archive.record("m", "p", batch.iter().cloned());
        // Duplicates are dropped...
        archive.record("m", "p", batch.iter().cloned());
        // ...and the per-shape bound holds.
        assert_eq!(archive.len(), MAX_ELITES_PER_SHAPE);
        let seeds = archive.seeds_for("m", "p", 2);
        assert_eq!(seeds.len(), MAX_ELITES_PER_SHAPE);
        assert!(archive.seeds_for("other_model", "p", 2).is_empty());
    }

    #[test]
    fn newest_elites_survive_truncation() {
        let (_, _, batch) = genomes(MAX_ELITES_PER_SHAPE + 4, 2);
        let archive = EliteArchive::new();
        archive.record("m", "p", batch[..MAX_ELITES_PER_SHAPE].iter().cloned());
        archive.record("m", "p", batch[MAX_ELITES_PER_SHAPE..].iter().cloned());
        let seeds = archive.seeds_for("m", "p", 2);
        // The four newest genomes lead, the four oldest fell off.
        for (i, genome) in batch[MAX_ELITES_PER_SHAPE..].iter().enumerate() {
            assert_eq!(seeds[i].fingerprint(), genome.fingerprint());
        }
        assert_eq!(seeds.len(), MAX_ELITES_PER_SHAPE);
    }

    #[test]
    fn same_platform_seeds_lead_and_stage_mismatches_drop() {
        let (_, _, duals) = genomes(3, 3);
        // Genomes for a four-unit platform must not seed a two-unit search.
        let quad_network = visformer_tiny(ModelPreset::cifar100());
        let quad = Arc::new(Genome::balanced(&quad_network, &Platform::agx_xavier()));
        let archive = EliteArchive::new();
        archive.record("m", "edge", duals[1..].iter().cloned());
        archive.record("m", "dual", [Arc::clone(&duals[0])]);
        archive.record("m", "quad", [quad]);

        let seeds = archive.seeds_for("m", "dual", 2);
        assert_eq!(seeds.len(), 3, "quad-stage genome must be filtered out");
        assert_eq!(seeds[0].fingerprint(), duals[0].fingerprint());
    }

    #[test]
    fn ranker_orders_decodable_seeds_and_sinks_foreign_ones() {
        let (network, platform, mut seeds) = genomes(6, 4);
        // A genome from another model: undecodable, must sink to the end.
        let foreign = Arc::new(Genome::balanced(
            &tiny_cnn(ModelPreset::cifar10()),
            &Platform::dual_test(),
        ));
        seeds.insert(0, Arc::clone(&foreign));

        let ranker = SurrogateRanker::train(&platform).unwrap();
        ranker.rank(&mut seeds, &network, &platform);
        assert_eq!(
            seeds.last().unwrap().fingerprint(),
            foreign.fingerprint(),
            "undecodable seed must rank last"
        );

        // Scores are deterministic and ascending after ranking.
        let layer_costs = network.layer_costs();
        let layer_classes: Vec<WorkloadClass> = network
            .iter()
            .map(|(_, layer)| WorkloadClass::from_layer(layer))
            .collect();
        let scores: Vec<f64> = seeds[..seeds.len() - 1]
            .iter()
            .map(|g| {
                ranker
                    .score(g, &network, &platform, &layer_costs, &layer_classes)
                    .unwrap()
            })
            .collect();
        for pair in scores.windows(2) {
            assert!(pair[0] <= pair[1], "ranking not ascending: {scores:?}");
        }
        assert!(scores.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn ranking_is_deterministic() {
        let (network, platform, seeds) = genomes(5, 9);
        let ranker = SurrogateRanker::train(&platform).unwrap();
        let mut a = seeds.clone();
        let mut b = seeds;
        ranker.rank(&mut a, &network, &platform);
        ranker.rank(&mut b, &network, &platform);
        let fps = |v: &[Arc<Genome>]| v.iter().map(|g| g.fingerprint()).collect::<Vec<_>>();
        assert_eq!(fps(&a), fps(&b));
    }
}
