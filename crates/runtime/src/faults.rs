//! The fault-injection harness behind the chaos tests.
//!
//! Robustness claims ("a mid-search panic answers every coalesced
//! follower", "a torn snapshot write restarts cold but healthy") are
//! only testable if the faults can actually be produced on demand.
//! [`FaultPlan`] is the process-global switchboard the `chaos_smoke`
//! bin and the regression tests flip: each injection point is a single
//! relaxed atomic load when disarmed, and nothing in the serving path
//! ever arms one — production behaviour is bit-identical to a build
//! without the hooks.
//!
//! Armed faults are one-shot: firing disarms them, so one injected
//! failure never cascades into unrelated requests (which is exactly the
//! recovery property the chaos harness asserts afterwards).
//!
//! The two in-process injection points live at the layers the wire
//! cannot reach from outside:
//!
//! * **Evaluator panic** ([`FaultPlan::arm_eval_panic`]) — the Nth
//!   evaluation from now panics, modelling a poisoned workload killing
//!   a search mid-flight on a worker thread.
//! * **Torn snapshot write** ([`FaultPlan::arm_snapshot_truncation`]) —
//!   the next archive snapshot's JSON is truncated before it reaches
//!   the disk, modelling a crash mid-write (against the atomic
//!   temp-file rename this corrupts the *content*, not the write
//!   protocol — what a pre-rename crash of an older server left
//!   behind).
//!
//! Socket-layer faults (mid-frame disconnect, stalled reader) need no
//! hook: a chaos client produces them from the outside.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Evaluations remaining until the armed panic fires (0 = disarmed).
static EVAL_PANIC_IN: AtomicU64 = AtomicU64::new(0);
/// Byte length the next snapshot's JSON is truncated to
/// (`usize::MAX` = disarmed).
static SNAPSHOT_TRUNCATE_TO: AtomicUsize = AtomicUsize::new(usize::MAX);

/// The message an injected evaluator panic carries — chaos tests match
/// on it to tell the injected fault from a real defect.
pub const EVAL_PANIC_MESSAGE: &str = "fault injection: evaluator panic";

/// The process-global fault plan. All faults are disarmed by default
/// and one-shot once armed; see the module docs.
#[derive(Debug)]
pub struct FaultPlan;

impl FaultPlan {
    /// Arms a panic on the `nth` evaluator call from now (1 = the very
    /// next evaluation). The panic unwinds through the search into the
    /// serving layer's `catch_unwind`, which answers a structured
    /// `Internal` error.
    pub fn arm_eval_panic(nth: u64) {
        EVAL_PANIC_IN.store(nth.max(1), Ordering::SeqCst);
    }

    /// Arms a torn archive write: the next snapshot's JSON is truncated
    /// to `bytes` before it reaches the disk, then the fault disarms
    /// itself.
    pub fn arm_snapshot_truncation(bytes: usize) {
        SNAPSHOT_TRUNCATE_TO.store(bytes, Ordering::SeqCst);
    }

    /// Resets the switchboard to its pristine state: every fault
    /// disarmed, armed-but-unfired faults included.
    pub fn reset() {
        EVAL_PANIC_IN.store(0, Ordering::SeqCst);
        SNAPSHOT_TRUNCATE_TO.store(usize::MAX, Ordering::SeqCst);
    }

    /// Disarms every fault. Alias of [`FaultPlan::reset`], kept for the
    /// chaos scenarios that read as "disarm" in their cleanup.
    pub fn disarm_all() {
        FaultPlan::reset();
    }

    /// Enters an exclusive fault-injection scope: the returned guard
    /// holds a process-global lock for its lifetime (so concurrent
    /// tests cannot race each other's armed faults) and calls
    /// [`FaultPlan::reset`] both on entry and on drop — a panicking
    /// test can never leak an armed fault into its siblings.
    pub fn guard() -> FaultGuard {
        // A panic while holding the lock poisons it; the state it
        // protects is reset on both edges, so the poison carries no
        // information — take the lock anyway.
        let lock = FAULT_SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
        FaultPlan::reset();
        FaultGuard { _lock: lock }
    }
}

/// Serializes fault-armed scopes across threads (see
/// [`FaultPlan::guard`]).
static FAULT_SCOPE: Mutex<()> = Mutex::new(());

/// An exclusive, self-cleaning fault-injection scope. Hold it for the
/// duration of a test that arms faults; every fault is disarmed when it
/// drops, panic or not.
#[derive(Debug)]
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        FaultPlan::reset();
    }
}

/// Evaluator injection point: counts an armed eval panic down, firing
/// (and disarming) when the countdown reaches its Nth call.
pub(crate) fn eval_tick() {
    let mut remaining = EVAL_PANIC_IN.load(Ordering::Relaxed);
    while remaining != 0 {
        match EVAL_PANIC_IN.compare_exchange_weak(
            remaining,
            remaining - 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                if remaining == 1 {
                    panic!("{EVAL_PANIC_MESSAGE}");
                }
                return;
            }
            Err(observed) => remaining = observed,
        }
    }
}

/// Archive-I/O injection point: applies (and disarms) a pending torn
/// write by truncating the serialized snapshot.
pub(crate) fn corrupt_snapshot_json(json: &mut String) {
    if SNAPSHOT_TRUNCATE_TO.load(Ordering::Relaxed) == usize::MAX {
        return;
    }
    let truncate_to = SNAPSHOT_TRUNCATE_TO.swap(usize::MAX, Ordering::SeqCst);
    if truncate_to == usize::MAX || truncate_to >= json.len() {
        return;
    }
    let mut boundary = truncate_to;
    while !json.is_char_boundary(boundary) {
        boundary -= 1;
    }
    json.truncate(boundary);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_no_ops() {
        FaultPlan::disarm_all();
        eval_tick();
        let mut json = String::from("{\"intact\": true}");
        corrupt_snapshot_json(&mut json);
        assert_eq!(json, "{\"intact\": true}");
    }

    #[test]
    fn snapshot_truncation_fires_once_then_disarms() {
        FaultPlan::arm_snapshot_truncation(4);
        let mut json = String::from("0123456789");
        corrupt_snapshot_json(&mut json);
        assert_eq!(json, "0123");
        let mut next = String::from("0123456789");
        corrupt_snapshot_json(&mut next);
        assert_eq!(next, "0123456789", "the fault is one-shot");
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        FaultPlan::arm_snapshot_truncation(2);
        let mut json = String::from("aé"); // 'é' spans bytes 1..3
        corrupt_snapshot_json(&mut json);
        assert_eq!(json, "a");
    }
}
