//! The cache-aware evaluation hook.
//!
//! [`CachedEvaluator`] wraps an [`mnc_core::Evaluator`] and a shared
//! [`EvalCache`], implementing [`mnc_optim::ConfigEvaluator`] so a
//! [`mnc_optim::MappingSearch`] transparently reuses every evaluation any
//! previous search performed against the same evaluator state. On a hit
//! the genome is neither decoded nor simulated — the cached configuration
//! and result come back as two `Arc` clones (allocation-free; the cache
//! and every consumer share one allocation per evaluation).
//!
//! Caching never changes results: the cache key covers the evaluator's
//! full fingerprint and the genome's full gene content, and evaluation is
//! a pure function of the two, so a hit returns exactly what the fresh
//! computation would have produced (see the bit-identity property test in
//! `tests/service.rs`).
//!
//! Misses are **coalesced per key**: when several threads miss on the same
//! genome at once (duplicate requests in a concurrent batch, duplicate
//! candidates in one population), [`EvalCache::begin_compute`] elects one
//! owner to decode + simulate while the rest block and are served the
//! owner's result — one evaluation instead of N.

use crate::cache::{ComputeLease, EvalCache};
use mnc_core::{CoreError, EvaluationResult, Evaluator, MappingConfig};
use mnc_dynamic::DynamicNetwork;
use mnc_mpsoc::Platform;
use mnc_nn::Network;
use mnc_optim::{ConfigEvaluator, Genome, OptimError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One wrapper's cache traffic, read as a unit — what the pipeline's
/// ArchiveFeedback stage folds into `RequestStats` so per-request
/// accounting never mixes counters sampled at different moments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheTraffic {
    /// Lookups served from the cache (including coalesced waits).
    pub hits: u64,
    /// Fresh evaluations this wrapper performed itself.
    pub misses: u64,
    /// Hits that were served by waiting on another thread's in-flight
    /// evaluation of the same key (a subset of `hits`).
    pub coalesced: u64,
}

impl CacheTraffic {
    /// Total cache lookups this wrapper performed (`hits + misses`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Capacity of the per-evaluator transform cache. A generation holds far
/// fewer distinct (partition, indicator) structures than genomes — the
/// mapping/DVFS operators leave the structure untouched — so a small LRU
/// captures most of the reuse without holding whole populations of
/// transformed networks alive.
const TRANSFORM_CACHE_CAPACITY: usize = 128;

/// LRU map from a genome's structure fingerprint to its (shared) dynamic
/// transformation. `DynamicNetwork::transform` is a pure function of the
/// network and the structure genes, so genomes differing only in mapping
/// or DVFS genes reuse one transform.
#[derive(Debug)]
struct TransformCache {
    entries: HashMap<u64, (Arc<DynamicNetwork>, u64)>,
    tick: u64,
}

impl TransformCache {
    fn new() -> Self {
        TransformCache {
            entries: HashMap::new(),
            tick: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<DynamicNetwork>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(dynamic, last_used)| {
            *last_used = tick;
            Arc::clone(dynamic)
        })
    }

    fn insert(&mut self, key: u64, dynamic: Arc<DynamicNetwork>) {
        if self.entries.len() >= TRANSFORM_CACHE_CAPACITY && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| *key)
            {
                self.entries.remove(&oldest);
            }
        }
        self.tick += 1;
        self.entries.insert(key, (dynamic, self.tick));
    }
}

/// An [`Evaluator`] with a shared evaluation cache in front.
///
/// Also keeps its own hit/miss counters, so a caller serving one request
/// can report that request's cache traffic without racing other requests
/// on the shared cache's global counters.
#[derive(Debug)]
pub struct CachedEvaluator {
    evaluator: Arc<Evaluator>,
    cache: Arc<EvalCache>,
    evaluator_fingerprint: u64,
    transforms: Mutex<TransformCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    transform_hits: AtomicU64,
    transform_misses: AtomicU64,
}

impl CachedEvaluator {
    /// Wraps an evaluator, fingerprinting it once.
    pub fn new(evaluator: Arc<Evaluator>, cache: Arc<EvalCache>) -> Self {
        let evaluator_fingerprint = evaluator.fingerprint();
        Self::with_fingerprint(evaluator, cache, evaluator_fingerprint)
    }

    /// Wraps an evaluator whose fingerprint the caller already knows
    /// (e.g. memoised next to a pooled evaluator), skipping the
    /// serialization pass `Evaluator::fingerprint` performs.
    pub fn with_fingerprint(
        evaluator: Arc<Evaluator>,
        cache: Arc<EvalCache>,
        evaluator_fingerprint: u64,
    ) -> Self {
        CachedEvaluator {
            evaluator,
            cache,
            evaluator_fingerprint,
            transforms: Mutex::new(TransformCache::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            transform_hits: AtomicU64::new(0),
            transform_misses: AtomicU64::new(0),
        }
    }

    /// Cache hits observed through this wrapper (including lookups served
    /// by waiting on a concurrent computation of the same key).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (fresh evaluations this wrapper performed itself).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that missed but were served by another thread's in-flight
    /// evaluation of the same key (a subset of [`CachedEvaluator::hits`]):
    /// duplicate evaluations this wrapper avoided.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// All three traffic counters in one snapshot.
    pub fn traffic(&self) -> CacheTraffic {
        CacheTraffic {
            hits: self.hits(),
            misses: self.misses(),
            coalesced: self.coalesced(),
        }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The wrapped evaluator's fingerprint (the high half of every cache
    /// key this wrapper produces).
    pub fn evaluator_fingerprint(&self) -> u64 {
        self.evaluator_fingerprint
    }

    /// The cache key for one genome under this evaluator.
    pub fn key_for(&self, genome: &Genome) -> u128 {
        EvalCache::key(self.evaluator_fingerprint, genome.fingerprint())
    }

    /// Transform-cache hits: evaluations that reused a memoised dynamic
    /// transformation instead of re-deriving it from the structure genes.
    pub fn transform_hits(&self) -> u64 {
        self.transform_hits.load(Ordering::Relaxed)
    }

    /// Transform-cache misses (fresh `DynamicNetwork::transform` runs).
    pub fn transform_misses(&self) -> u64 {
        self.transform_misses.load(Ordering::Relaxed)
    }

    /// The dynamic transformation for one structure fingerprint, served
    /// from the per-evaluator LRU when an equal structure was transformed
    /// before.
    ///
    /// A hit is collision-safe, matching the stance the batch scheduler
    /// takes for request grouping: the cached [`DynamicNetwork`] carries
    /// the partition/indicator it was derived from, and a fingerprint
    /// match is only honoured when those equal the requesting config's —
    /// a 64-bit collision between different structures falls through to a
    /// fresh transform instead of silently evaluating the wrong network.
    ///
    /// The lock is not held across the transform itself, so two threads
    /// racing on the *same* new structure may both compute it — a benign
    /// duplication (the transform is pure, and the second insert simply
    /// replaces the first with an equal value); threads working on
    /// *different* structures never serialise behind each other's
    /// transforms.
    fn transformed(
        &self,
        structure: u64,
        config: &MappingConfig,
    ) -> Result<Arc<DynamicNetwork>, OptimError> {
        if let Some(dynamic) = self
            .transforms
            .lock()
            .expect("transform cache lock poisoned")
            .get(structure)
        {
            if dynamic.partition() == &config.partition && dynamic.indicator() == &config.indicator
            {
                self.transform_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(dynamic);
            }
        }
        let dynamic = Arc::new(
            DynamicNetwork::transform(
                self.evaluator.network(),
                &config.partition,
                &config.indicator,
            )
            .map_err(CoreError::Dynamic)?,
        );
        self.transform_misses.fetch_add(1, Ordering::Relaxed);
        self.transforms
            .lock()
            .expect("transform cache lock poisoned")
            .insert(structure, Arc::clone(&dynamic));
        Ok(dynamic)
    }
}

impl ConfigEvaluator for CachedEvaluator {
    fn network(&self) -> &Network {
        self.evaluator.network()
    }

    fn platform(&self) -> &Platform {
        self.evaluator.platform()
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        let key = self.key_for(genome);
        if let Some(entry) = self.cache.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        // Miss: claim the key. Exactly one thread becomes the owner and
        // evaluates; concurrent missers block and reuse its result.
        match self.cache.begin_compute(key) {
            ComputeLease::Ready(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(*entry)
            }
            ComputeLease::Owner(guard) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::faults::eval_tick();
                let config = genome.decode(self.evaluator.network(), self.evaluator.platform())?;
                // Genomes differing only in mapping/DVFS genes share a
                // (partition, indicator) pair: reuse its transform and go
                // straight to `evaluate_transformed`.
                let dynamic = self.transformed(genome.structure_fingerprint(), &config)?;
                let result = self.evaluator.evaluate_transformed(&dynamic, &config)?;
                let config = Arc::new(config);
                let result = Arc::new(result);
                // The cache holds the same `Arc`s the caller receives —
                // cloning an entry out is two reference-count bumps.
                self.cache
                    .insert(key, Arc::clone(&config), Arc::clone(&result));
                // Release only after the insert so woken waiters find the
                // entry; on the `?` error paths above the guard's drop
                // hands the key to the next waiter instead.
                drop(guard);
                Ok((config, result))
            }
        }
    }

    fn evaluate_genome_fast(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        let key = self.key_for(genome);
        if let Some(entry) = self.cache.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        match self.cache.begin_compute(key) {
            ComputeLease::Ready(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(*entry)
            }
            ComputeLease::Owner(guard) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::faults::eval_tick();
                let config = genome.decode(self.evaluator.network(), self.evaluator.platform())?;
                // The search-loop hook: a GA population practically never
                // repeats a structure, so the transform LRU cannot pay for
                // itself here — evaluate through the fused pipeline
                // (bit-identical, no materialised `DynamicNetwork`)
                // instead, with the genome's slot rows keying the accuracy
                // model's slice-mass memo. The plain hook above keeps the
                // LRU for workloads that *do* share structures
                // (mapping/DVFS variants of one partitioning).
                let result = self
                    .evaluator
                    .evaluate_fused_keyed(&config, &genome.partition_row_keys())?;
                let config = Arc::new(config);
                let result = Arc::new(result);
                self.cache
                    .insert(key, Arc::clone(&config), Arc::clone(&result));
                drop(guard);
                Ok((config, result))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_core::EvaluatorBuilder;
    use mnc_nn::models::{tiny_cnn, ModelPreset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cached(samples: usize) -> CachedEvaluator {
        let evaluator =
            EvaluatorBuilder::new(tiny_cnn(ModelPreset::cifar10()), Platform::dual_test())
                .validation_samples(samples)
                .build()
                .unwrap();
        CachedEvaluator::new(Arc::new(evaluator), Arc::new(EvalCache::new()))
    }

    #[test]
    fn second_evaluation_hits_the_cache() {
        let cached = cached(300);
        let mut rng = StdRng::seed_from_u64(5);
        let genome = Genome::random(cached.network(), cached.platform(), &mut rng);
        let fresh = cached.evaluate_genome(&genome).unwrap();
        let replay = cached.evaluate_genome(&genome).unwrap();
        assert_eq!(fresh, replay);
        let stats = cached.cache().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_misses_on_one_key_evaluate_once() {
        // Regression: before in-flight coalescing, N threads missing on
        // the same genome all decoded + simulated it. Now exactly one
        // owner evaluates and the rest are served its result.
        let cached = cached(300);
        let mut rng = StdRng::seed_from_u64(7);
        let genome = Genome::random(cached.network(), cached.platform(), &mut rng);

        const THREADS: u64 = 8;
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| cached.evaluate_genome(&genome).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for result in &results[1..] {
            assert_eq!(result, &results[0]);
        }

        // One fresh evaluation; every other lookup was a plain hit or a
        // coalesced wait — never a second evaluation.
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), THREADS - 1);
        let stats = cached.cache().stats();
        assert_eq!(stats.insertions, 1);
        assert!(stats.insertions <= stats.misses);
        assert_eq!(stats.coalesced, cached.coalesced());
        // The snapshot reads the same three counters as one unit.
        let traffic = cached.traffic();
        assert_eq!(
            traffic,
            CacheTraffic {
                hits: THREADS - 1,
                misses: 1,
                coalesced: cached.coalesced(),
            }
        );
        assert!(traffic.coalesced <= traffic.hits);
    }

    #[test]
    fn shared_structure_genomes_reuse_one_transform() {
        let cached = cached(300);
        let mut rng = StdRng::seed_from_u64(11);
        let base = Genome::random(cached.network(), cached.platform(), &mut rng);

        // Variants that only permute the mapping / shift DVFS share the
        // base genome's structure fingerprint.
        let mut mapping: Vec<usize> = base.mapping_genes().to_vec();
        mapping.reverse();
        let dvfs: Vec<u8> = base
            .dvfs_genes()
            .iter()
            .map(|level| (level + 1) % mnc_optim::genome::DVFS_RESOLUTION)
            .collect();
        let variant = base.remapped(mapping, dvfs).unwrap();
        assert_eq!(
            base.structure_fingerprint(),
            variant.structure_fingerprint()
        );
        assert_ne!(base.fingerprint(), variant.fingerprint());

        let (config_a, result_a) = cached.evaluate_genome(&base).unwrap();
        let (_, _) = cached.evaluate_genome(&variant).unwrap();
        assert_eq!(cached.transform_misses(), 1);
        assert_eq!(cached.transform_hits(), 1);

        // The memoised transform changes nothing: a fresh evaluator
        // produces the same result for the base genome.
        let fresh = cached.evaluator().evaluate(&config_a).unwrap();
        assert_eq!(fresh, *result_a);
        assert_eq!(fresh.objective.to_bits(), result_a.objective.to_bits());
    }

    #[test]
    fn different_evaluators_use_disjoint_keys() {
        let a = cached(300);
        let b = cached(301); // different validation set → different fingerprint
        assert_ne!(a.evaluator_fingerprint(), b.evaluator_fingerprint());
        let mut rng = StdRng::seed_from_u64(5);
        let genome = Genome::random(a.network(), a.platform(), &mut rng);
        assert_ne!(a.key_for(&genome), b.key_for(&genome));
    }
}
