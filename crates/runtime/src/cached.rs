//! The cache-aware evaluation hook.
//!
//! [`CachedEvaluator`] wraps an [`mnc_core::Evaluator`] and a shared
//! [`EvalCache`], implementing [`mnc_optim::ConfigEvaluator`] so a
//! [`mnc_optim::MappingSearch`] transparently reuses every evaluation any
//! previous search performed against the same evaluator state. On a hit
//! the genome is neither decoded nor simulated — the cached configuration
//! and result are cloned out.
//!
//! Caching never changes results: the cache key covers the evaluator's
//! full fingerprint and the genome's full gene content, and evaluation is
//! a pure function of the two, so a hit returns exactly what the fresh
//! computation would have produced (see the bit-identity property test in
//! `tests/service.rs`).
//!
//! Misses are **coalesced per key**: when several threads miss on the same
//! genome at once (duplicate requests in a concurrent batch, duplicate
//! candidates in one population), [`EvalCache::begin_compute`] elects one
//! owner to decode + simulate while the rest block and are served the
//! owner's result — one evaluation instead of N.

use crate::cache::{ComputeLease, EvalCache};
use mnc_core::{EvaluationResult, Evaluator, MappingConfig};
use mnc_mpsoc::Platform;
use mnc_nn::Network;
use mnc_optim::{ConfigEvaluator, Genome, OptimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An [`Evaluator`] with a shared evaluation cache in front.
///
/// Also keeps its own hit/miss counters, so a caller serving one request
/// can report that request's cache traffic without racing other requests
/// on the shared cache's global counters.
#[derive(Debug)]
pub struct CachedEvaluator {
    evaluator: Arc<Evaluator>,
    cache: Arc<EvalCache>,
    evaluator_fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl CachedEvaluator {
    /// Wraps an evaluator, fingerprinting it once.
    pub fn new(evaluator: Arc<Evaluator>, cache: Arc<EvalCache>) -> Self {
        let evaluator_fingerprint = evaluator.fingerprint();
        Self::with_fingerprint(evaluator, cache, evaluator_fingerprint)
    }

    /// Wraps an evaluator whose fingerprint the caller already knows
    /// (e.g. memoised next to a pooled evaluator), skipping the
    /// serialization pass `Evaluator::fingerprint` performs.
    pub fn with_fingerprint(
        evaluator: Arc<Evaluator>,
        cache: Arc<EvalCache>,
        evaluator_fingerprint: u64,
    ) -> Self {
        CachedEvaluator {
            evaluator,
            cache,
            evaluator_fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Cache hits observed through this wrapper (including lookups served
    /// by waiting on a concurrent computation of the same key).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (fresh evaluations this wrapper performed itself).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that missed but were served by another thread's in-flight
    /// evaluation of the same key (a subset of [`CachedEvaluator::hits`]):
    /// duplicate evaluations this wrapper avoided.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The wrapped evaluator's fingerprint (the high half of every cache
    /// key this wrapper produces).
    pub fn evaluator_fingerprint(&self) -> u64 {
        self.evaluator_fingerprint
    }

    /// The cache key for one genome under this evaluator.
    pub fn key_for(&self, genome: &Genome) -> u128 {
        EvalCache::key(self.evaluator_fingerprint, genome.fingerprint())
    }
}

impl ConfigEvaluator for CachedEvaluator {
    fn network(&self) -> &Network {
        self.evaluator.network()
    }

    fn platform(&self) -> &Platform {
        self.evaluator.platform()
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(MappingConfig, EvaluationResult), OptimError> {
        let key = self.key_for(genome);
        if let Some(entry) = self.cache.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        // Miss: claim the key. Exactly one thread becomes the owner and
        // evaluates; concurrent missers block and reuse its result.
        match self.cache.begin_compute(key) {
            ComputeLease::Ready(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(*entry)
            }
            ComputeLease::Owner(guard) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let config = genome.decode(self.evaluator.network(), self.evaluator.platform())?;
                let result = self.evaluator.evaluate(&config)?;
                self.cache.insert(key, config.clone(), result.clone());
                // Release only after the insert so woken waiters find the
                // entry; on the `?` error paths above the guard's drop
                // hands the key to the next waiter instead.
                drop(guard);
                Ok((config, result))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_core::EvaluatorBuilder;
    use mnc_nn::models::{tiny_cnn, ModelPreset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cached(samples: usize) -> CachedEvaluator {
        let evaluator =
            EvaluatorBuilder::new(tiny_cnn(ModelPreset::cifar10()), Platform::dual_test())
                .validation_samples(samples)
                .build()
                .unwrap();
        CachedEvaluator::new(Arc::new(evaluator), Arc::new(EvalCache::new()))
    }

    #[test]
    fn second_evaluation_hits_the_cache() {
        let cached = cached(300);
        let mut rng = StdRng::seed_from_u64(5);
        let genome = Genome::random(cached.network(), cached.platform(), &mut rng);
        let fresh = cached.evaluate_genome(&genome).unwrap();
        let replay = cached.evaluate_genome(&genome).unwrap();
        assert_eq!(fresh, replay);
        let stats = cached.cache().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_misses_on_one_key_evaluate_once() {
        // Regression: before in-flight coalescing, N threads missing on
        // the same genome all decoded + simulated it. Now exactly one
        // owner evaluates and the rest are served its result.
        let cached = cached(300);
        let mut rng = StdRng::seed_from_u64(7);
        let genome = Genome::random(cached.network(), cached.platform(), &mut rng);

        const THREADS: u64 = 8;
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| cached.evaluate_genome(&genome).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for result in &results[1..] {
            assert_eq!(result, &results[0]);
        }

        // One fresh evaluation; every other lookup was a plain hit or a
        // coalesced wait — never a second evaluation.
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), THREADS - 1);
        let stats = cached.cache().stats();
        assert_eq!(stats.insertions, 1);
        assert!(stats.insertions <= stats.misses);
        assert_eq!(stats.coalesced, cached.coalesced());
    }

    #[test]
    fn different_evaluators_use_disjoint_keys() {
        let a = cached(300);
        let b = cached(301); // different validation set → different fingerprint
        assert_ne!(a.evaluator_fingerprint(), b.evaluator_fingerprint());
        let mut rng = StdRng::seed_from_u64(5);
        let genome = Genome::random(a.network(), a.platform(), &mut rng);
        assert_ne!(a.key_for(&genome), b.key_for(&genome));
    }
}
