//! The Map-and-Conquer mapping service.
//!
//! The rest of the workspace is an *offline* toolkit: build an evaluator
//! for one (network, platform) pair, run one evolutionary search, read the
//! Pareto front. This crate turns that toolkit into a long-lived service
//! that answers mapping *queries* — "give me the energy/latency Pareto
//! front for model X on board Y under objective weights W within budget B"
//! — the way a fleet-management or deployment-planning system would ask
//! them, many times, for many models and boards.
//!
//! Three pieces make that fast:
//!
//! * [`registry`] — named catalogues of the built-in model presets and
//!   (via [`mnc_mpsoc::PlatformRegistry`]) the platform presets, so
//!   requests are plain data (strings + numbers) rather than Rust values,
//! * [`cache`] — a sharded, fingerprint-keyed evaluation cache: every
//!   (evaluator, genome) pair evaluated anywhere in the service is
//!   remembered, so a repeated or overlapping request skips the decode and
//!   re-simulation entirely,
//! * [`cached`] — [`CachedEvaluator`], the [`mnc_optim::ConfigEvaluator`]
//!   implementation that splices the cache into the search loop, which
//!   rayon-parallelises each generation across cores while staying
//!   bit-deterministic for a given seed, and coalesces concurrent misses
//!   on one key into a single evaluation,
//! * [`scheduler`] — the batch scheduler behind
//!   [`MappingService::submit_batch`]: identical in-flight requests are
//!   deduplicated onto one search and distinct requests run concurrently
//!   under a [`BatchConfig`] thread budget, with responses bit-identical
//!   to serving each request alone,
//! * [`pipeline`] — the staged request pipeline, split into a pure
//!   bounded-latency fast path (`Normalize → Fingerprint → Coalesce →
//!   CacheLookup`) and a search-running slow path (`ResolveEvaluator →
//!   WarmStartSeed → Search → ArchiveFeedback`) joined by the typed
//!   [`FastPathOutcome`] seam, which `submit`, `submit_batch` and the
//!   `mnc-wire`/`mnc-server` JSON front-end all drive, with per-stage
//!   counters ([`PipelineStats`]) and a per-request stage trace in every
//!   [`RequestStats`],
//! * [`response_cache`] — the bounded cache of answered cold requests
//!   behind the fast path: a repeated identical request replays its
//!   stored response without touching the evaluator pool or a search
//!   worker,
//! * [`warmstart`] — the opt-in warm-start path: Pareto elites of
//!   answered requests are archived per (model, platform) and, when a
//!   request sets `warm_start`, re-ranked by an `mnc_predictor` surrogate
//!   for the target platform and injected into the search's initial
//!   population, so similar requests converge in measurably fewer
//!   evaluations.
//!
//! # Example
//!
//! ```
//! use mnc_runtime::{MappingRequest, MappingService};
//!
//! # fn main() -> Result<(), mnc_runtime::RuntimeError> {
//! let service = MappingService::new();
//! let request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
//!     .validation_samples(500)
//!     .generations(3)
//!     .population_size(8);
//! let response = service.submit(&request)?;
//! assert!(!response.pareto_front.is_empty());
//! // An identical request is answered on the pipeline's fast path: the
//! // stored response replays bit-identically without running a search.
//! let again = service.submit(&request)?;
//! assert_eq!(response.pareto_front, again.pareto_front);
//! assert_eq!(service.pipeline_stats().fast_path_answered, 1);
//! assert_eq!(service.pipeline_stats().searches_run, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cached;
pub mod error;
pub mod faults;
pub mod pipeline;
pub mod qos;
pub mod registry;
pub mod response_cache;
pub mod scheduler;
pub mod service;
pub mod telemetry;
pub mod warmstart;

pub use cache::{CacheStats, ComputeLease, EvalCache};
pub use cached::{CacheTraffic, CachedEvaluator};
pub use error::RuntimeError;
pub use faults::{FaultGuard, FaultPlan};
pub use pipeline::{
    FastPathOutcome, PausedSearch, PipelineStage, PipelineStats, RequestPipeline, SearchTicket,
    SlowPathRun, StageMicros, StageStats, STAGE_COUNT,
};
pub use qos::{
    DrrQueue, TenantPolicy, TenantPolicyTable, TokenBucket, DEFAULT_PRIORITY, DEFAULT_TENANT,
};
pub use registry::ModelRegistry;
pub use response_cache::ResponseCacheStats;
pub use scheduler::{BatchConfig, BatchReport, BatchStats};
pub use service::{MappingRequest, MappingResponse, MappingService, RequestStats, ServiceConfig};
pub use telemetry::{ServingMetrics, TelemetryConfig, TenantMetrics};
pub use warmstart::{ArchiveLoad, ArchiveShape, ArchiveSnapshot, EliteArchive, SurrogateRanker};
// Re-exported so serving layers can cancel a ticket's running search
// (see [`SearchTicket::cancel_token`]) or pause one for preemption
// (see [`RequestPipeline::slow_path_resumable`]) without naming the
// optimizer crate themselves.
pub use mnc_optim::{CancelToken, PauseToken};
// Telemetry vocabulary types, re-exported so front-ends (wire, server,
// bench) can consume snapshots and traces without naming the telemetry
// crate themselves.
pub use mnc_telemetry::{
    find_sample, parse_prometheus, GenerationEvent, HistogramSnapshot, LatencySummary,
    MetricsSnapshot, PromSample, RequestTrace, StageSpan, TraceEvent,
};
