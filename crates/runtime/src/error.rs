//! Error type for the mapping service.

use std::error::Error;
use std::fmt;

/// Errors produced while resolving or answering a mapping request.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The requested model preset is not registered.
    UnknownModel {
        /// The requested name.
        name: String,
        /// Comma-separated list of registered names.
        available: String,
    },
    /// The requested platform preset is not registered. (Mirrors
    /// [`RuntimeError::UnknownModel`] so callers handle both unknown-preset
    /// cases at the same altitude instead of digging into
    /// [`mnc_mpsoc::MpsocError`].)
    UnknownPlatform {
        /// The requested name.
        name: String,
        /// Comma-separated list of registered names.
        available: String,
    },
    /// A request parameter is invalid (zero budget, bad weights, ...).
    InvalidRequest {
        /// Description of the problem.
        reason: String,
    },
    /// The request's deadline expired before its search could start, so
    /// no search ran. (A deadline that expires *while* the search runs
    /// does not error: the search stops at the next generation boundary
    /// and answers with the best-so-far front marked `partial`.)
    DeadlineExceeded {
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
    },
    /// The request's tenant has exhausted its evaluation token bucket;
    /// no search ran. Transient by construction: the bucket refills at
    /// the tenant's configured rate, and `retry_after_ms` estimates when
    /// enough tokens will be back. Serving layers answer this as a
    /// structured error with the hint attached — never by dropping the
    /// connection.
    BudgetExhausted {
        /// The tenant whose bucket ran dry.
        tenant: String,
        /// Estimated wait until the bucket can admit a request again.
        retry_after_ms: u64,
    },
    /// An elite-archive snapshot could not be written, read or parsed
    /// (see `crate::warmstart::EliteArchive::{snapshot_to, load_from}`).
    Persistence {
        /// The snapshot file involved.
        path: String,
        /// What went wrong.
        reason: String,
    },
    /// An error bubbled up from the hardware model.
    Mpsoc(mnc_mpsoc::MpsocError),
    /// An error bubbled up from the evaluator.
    Core(mnc_core::CoreError),
    /// An error bubbled up from the search.
    Optim(mnc_optim::OptimError),
    /// An error bubbled up from the warm-start surrogate.
    Predictor(mnc_predictor::PredictorError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownModel { name, available } => {
                write!(f, "unknown model preset `{name}`; available: {available}")
            }
            RuntimeError::UnknownPlatform { name, available } => {
                write!(
                    f,
                    "unknown platform preset `{name}`; available: {available}"
                )
            }
            RuntimeError::InvalidRequest { reason } => {
                write!(f, "invalid mapping request: {reason}")
            }
            RuntimeError::DeadlineExceeded { deadline_ms } => {
                write!(
                    f,
                    "deadline of {deadline_ms} ms exceeded before the search started"
                )
            }
            RuntimeError::BudgetExhausted {
                tenant,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "tenant `{tenant}` evaluation budget exhausted; retry in ~{retry_after_ms} ms"
                )
            }
            RuntimeError::Persistence { path, reason } => {
                write!(f, "archive persistence failed for `{path}`: {reason}")
            }
            RuntimeError::Mpsoc(e) => write!(f, "platform error: {e}"),
            RuntimeError::Core(e) => write!(f, "evaluation error: {e}"),
            RuntimeError::Optim(e) => write!(f, "search error: {e}"),
            RuntimeError::Predictor(e) => write!(f, "warm-start surrogate error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Mpsoc(e) => Some(e),
            RuntimeError::Core(e) => Some(e),
            RuntimeError::Optim(e) => Some(e),
            RuntimeError::Predictor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mnc_mpsoc::MpsocError> for RuntimeError {
    fn from(e: mnc_mpsoc::MpsocError) -> Self {
        RuntimeError::Mpsoc(e)
    }
}

impl From<mnc_core::CoreError> for RuntimeError {
    fn from(e: mnc_core::CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

impl From<mnc_optim::OptimError> for RuntimeError {
    fn from(e: mnc_optim::OptimError) -> Self {
        RuntimeError::Optim(e)
    }
}

impl From<mnc_predictor::PredictorError> for RuntimeError {
    fn from(e: mnc_predictor::PredictorError) -> Self {
        RuntimeError::Predictor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_work() {
        let e = RuntimeError::UnknownModel {
            name: "resnet".to_string(),
            available: "vgg19_cifar100".to_string(),
        };
        assert!(e.to_string().contains("resnet"));
        assert!(e.source().is_none());

        let e = RuntimeError::from(mnc_optim::OptimError::NoFeasibleConfiguration);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
