//! The response cache behind the pipeline's fast path.
//!
//! A cold (non-warm-start) request's response is a deterministic
//! function of the request alone — "same request → bit-identical front"
//! is the service's core guarantee — so once a request has been
//! answered, an identical request can be answered again by replaying the
//! stored response without touching the evaluator pool or the search
//! worker pool at all. [`ResponseCache`] stores those answers keyed by
//! the same full-request coalescing fingerprint that batch coalescing
//! groups on ([`normalized_for_coalescing`] + `fingerprint_serialized`),
//! with membership confirmed by normalised-request equality so a 64-bit
//! collision reads as a miss instead of answering one request with
//! another's front.
//!
//! Warm-start responses are never stored or served from here: they
//! additionally depend on the archive history at the time they ran, so
//! replaying one would freeze that history into future answers.
//!
//! Replayed responses are verbatim clones — `RequestStats` included —
//! exactly like the coalesced duplicates of a batch, which carry their
//! group leader's accounting. The eviction policy is LRU over a bounded
//! entry count, the same recency idiom as the evaluator pool.
//!
//! [`normalized_for_coalescing`]: crate::scheduler

use crate::service::{MappingRequest, MappingResponse};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on cached responses. Each entry pins a Pareto front
/// (genome `Arc`s plus per-config results), so the cache is bounded like
/// the evaluator pool rather than the per-evaluation cache.
pub(crate) const DEFAULT_RESPONSE_CACHE_ENTRIES: usize = 256;

/// The probe/insert key for one request: the full-request coalescing
/// fingerprint plus the normalised form that confirms membership.
#[derive(Debug, Clone)]
pub(crate) struct ResponseKey {
    pub(crate) fingerprint: u64,
    pub(crate) normalized: MappingRequest,
}

#[derive(Debug)]
struct Entry {
    normalized: MappingRequest,
    response: Arc<MappingResponse>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    /// Recency order, front = least recently used.
    order: VecDeque<u64>,
}

impl Inner {
    fn touch(&mut self, fingerprint: u64) {
        if let Some(position) = self.order.iter().position(|&k| k == fingerprint) {
            self.order.remove(position);
        }
        self.order.push_back(fingerprint);
    }
}

/// Service-lifetime response-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseCacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Configured bound (0 = the cache is disabled).
    pub capacity: usize,
    /// Probes answered by a stored response.
    pub hits: u64,
    /// Probes that found nothing (fingerprint absent or a collision).
    pub misses: u64,
    /// Responses stored.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

/// A bounded, collision-safe cache of cold-request responses.
#[derive(Debug)]
pub(crate) struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ResponseCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether probes can ever hit (capacity 0 disables the cache and
    /// the fast path skips the key derivation entirely).
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up the stored response for `key`, marking it most recently
    /// used. A fingerprint match with a different normalised request (a
    /// 64-bit collision) counts as a miss.
    pub(crate) fn probe(&self, key: &ResponseKey) -> Option<Arc<MappingResponse>> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self
            .inner
            .lock()
            .expect("response cache lock never poisoned");
        let found = match inner.entries.get(&key.fingerprint) {
            Some(entry) if entry.normalized == key.normalized => Some(Arc::clone(&entry.response)),
            _ => None,
        };
        match found {
            Some(response) => {
                inner.touch(key.fingerprint);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly computed response, evicting least-recently-used
    /// entries beyond the bound. A colliding fingerprint is overwritten:
    /// the newer answer wins, the older one re-runs its search on its
    /// next request.
    pub(crate) fn insert(&self, key: &ResponseKey, response: &MappingResponse) {
        if !self.enabled() {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .expect("response cache lock never poisoned");
        let replaced = inner
            .entries
            .insert(
                key.fingerprint,
                Entry {
                    normalized: key.normalized.clone(),
                    response: Arc::new(response.clone()),
                },
            )
            .is_some();
        inner.touch(key.fingerprint);
        let mut evicted = 0;
        while inner.entries.len() > self.capacity {
            let Some(lru) = inner.order.pop_front() else {
                break;
            };
            inner.entries.remove(&lru);
            evicted += 1;
        }
        drop(inner);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if replaced {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ResponseCacheStats {
        let entries = self
            .inner
            .lock()
            .expect("response cache lock never poisoned")
            .entries
            .len();
        ResponseCacheStats {
            entries,
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RequestStats;

    fn request(seed: u64) -> MappingRequest {
        MappingRequest::new("tiny_cnn_cifar10", "dual_test").seed(seed)
    }

    fn key_for(request: &MappingRequest, fingerprint: u64) -> ResponseKey {
        ResponseKey {
            fingerprint,
            normalized: request.clone(),
        }
    }

    fn response_for(request: &MappingRequest) -> MappingResponse {
        MappingResponse {
            model: request.model.clone(),
            platform: request.platform.clone(),
            pareto_front: Vec::new(),
            best_by_objective: None,
            stats: RequestStats {
                evaluations: 0,
                evaluations_performed: 0,
                memo_hits: 0,
                warm_start_seeds: 0,
                generations_run: 0,
                early_stopped: false,
                partial: false,
                cache_hits: 0,
                cache_misses: 0,
                cache_coalesced: 0,
                elapsed_ms: 0.0,
                stage_micros: [0.0; crate::pipeline::STAGE_COUNT],
            },
        }
    }

    #[test]
    fn probe_miss_insert_hit_round_trip() {
        let cache = ResponseCache::new(4);
        let request = request(1);
        let key = key_for(&request, 42);
        assert!(cache.probe(&key).is_none());
        cache.insert(&key, &response_for(&request));
        let hit = cache.probe(&key).expect("stored response replays");
        assert_eq!(hit.model, request.model);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn fingerprint_collisions_read_as_misses() {
        let cache = ResponseCache::new(4);
        let stored = request(1);
        cache.insert(&key_for(&stored, 7), &response_for(&stored));
        // Same fingerprint, different normalised request: a collision
        // must never answer with the other request's front.
        assert!(cache.probe(&key_for(&request(2), 7)).is_none());
        assert!(cache.probe(&key_for(&stored, 7)).is_some());
    }

    #[test]
    fn lru_bound_evicts_the_coldest_entry() {
        let cache = ResponseCache::new(2);
        for fingerprint in 0..2u64 {
            let r = request(fingerprint);
            cache.insert(&key_for(&r, fingerprint), &response_for(&r));
        }
        // Touch entry 0 so entry 1 is the LRU, then overflow.
        assert!(cache.probe(&key_for(&request(0), 0)).is_some());
        let r = request(9);
        cache.insert(&key_for(&r, 9), &response_for(&r));
        assert!(cache.probe(&key_for(&request(0), 0)).is_some());
        assert!(cache.probe(&key_for(&request(1), 1)).is_none());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = ResponseCache::new(0);
        let r = request(1);
        let key = key_for(&r, 1);
        cache.insert(&key, &response_for(&r));
        assert!(cache.probe(&key).is_none());
        assert!(!cache.enabled());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.insertions, 0);
    }
}
