//! Named model presets the service can instantiate.
//!
//! Mirrors [`mnc_mpsoc::PlatformRegistry`] on the model side: every
//! builder in [`mnc_nn::models`] crossed with the dataset presets it makes
//! sense for, under stable `<architecture>_<dataset>` names. Networks are
//! built on demand — construction is pure and cheap relative to a search.

use crate::error::RuntimeError;
use mnc_nn::models::{tiny_cnn, vgg11, vgg19, visformer, visformer_tiny, ModelPreset};
use mnc_nn::Network;

/// A named network constructor.
type ModelFn = fn() -> Network;

/// The built-in model presets, in a stable order.
const MODELS: &[(&str, ModelFn)] = &[
    ("visformer_cifar100", || visformer(ModelPreset::cifar100())),
    ("visformer_cifar10", || visformer(ModelPreset::cifar10())),
    ("visformer_tiny_cifar100", || {
        visformer_tiny(ModelPreset::cifar100())
    }),
    ("visformer_tiny_cifar10", || {
        visformer_tiny(ModelPreset::cifar10())
    }),
    ("vgg19_cifar100", || vgg19(ModelPreset::cifar100())),
    ("vgg19_cifar10", || vgg19(ModelPreset::cifar10())),
    ("vgg11_cifar100", || vgg11(ModelPreset::cifar100())),
    ("vgg11_cifar10", || vgg11(ModelPreset::cifar10())),
    ("tiny_cnn_cifar10", || tiny_cnn(ModelPreset::cifar10())),
];

/// Name-indexed catalogue of the built-in model presets.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelRegistry;

impl ModelRegistry {
    /// Creates the registry.
    pub fn new() -> Self {
        ModelRegistry
    }

    /// Names of every registered model, in a stable order.
    pub fn names(&self) -> Vec<&'static str> {
        MODELS.iter().map(|(name, _)| *name).collect()
    }

    /// Whether `name` is a registered model.
    pub fn contains(&self, name: &str) -> bool {
        MODELS.iter().any(|(n, _)| *n == name)
    }

    /// The registered names as one comma-separated string — the
    /// `available` field of [`RuntimeError::UnknownModel`], shared by the
    /// pipeline's Normalize stage and [`ModelRegistry::build`] so both
    /// reject unknown presets with the identical error.
    pub fn available(&self) -> String {
        self.names().join(", ")
    }

    /// Builds the model with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownModel`] for unregistered names.
    pub fn build(&self, name: &str) -> Result<Network, RuntimeError> {
        MODELS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, build)| build())
            .ok_or_else(|| RuntimeError::UnknownModel {
                name: name.to_string(),
                available: self.available(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_model() {
        let registry = ModelRegistry::new();
        assert!(registry.names().len() >= 9);
        for name in registry.names() {
            assert!(registry.contains(name));
            let network = registry.build(name).unwrap();
            assert!(network.num_layers() > 0, "{name} has layers");
        }
    }

    #[test]
    fn unknown_model_lists_alternatives() {
        let registry = ModelRegistry::new();
        let err = registry.build("resnet50_imagenet").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("resnet50_imagenet"));
        assert!(text.contains("vgg19_cifar100"));
    }
}
