//! Fault-injection regression tests for crash-safe archive
//! persistence. These live in their own integration-test binary because
//! [`FaultPlan`] is process-global: arming a fault here must not race
//! the persistence tests in `pipeline.rs` (a separate process).

use mnc_runtime::{ArchiveLoad, FaultPlan, MappingRequest, MappingService};
use std::path::PathBuf;

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mnc_chaos_test_{tag}_{}.json", std::process::id()))
}

fn request(seed: u64) -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8)
        .seed(seed)
}

/// The torn-write regression: a snapshot truncated mid-write (the crash
/// a pre-rename server could leave behind) is quarantined on restart —
/// the original path renamed to `<name>.corrupt` — and the restarted
/// service comes up cold but healthy: it serves requests, and the next
/// snapshot/restore cycle is whole again.
#[test]
fn torn_snapshot_write_quarantines_and_restarts_cold_but_healthy() {
    let _guard = FaultPlan::guard();
    let path = temp_file("torn");
    let quarantined = PathBuf::from(format!("{}.corrupt", path.display()));

    // First life: populate the archive, persist through a torn write.
    let service = MappingService::new();
    service.submit(&request(1)).unwrap();
    assert!(!service.elite_archive().is_empty());
    FaultPlan::arm_snapshot_truncation(16);
    let written = service.save_archive(&path).unwrap();
    assert!(written > 0, "the write itself reports success");
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert!(on_disk.len() <= 16, "the snapshot really is torn");

    // Restart: the corrupt snapshot is quarantined, not fatal.
    let restarted = MappingService::new();
    match restarted.restore_archive(&path).unwrap() {
        ArchiveLoad::Quarantined {
            quarantined_to,
            reason,
        } => {
            assert_eq!(quarantined_to, quarantined);
            assert!(!reason.is_empty());
        }
        other => panic!("torn snapshot gave {other:?}"),
    }
    assert!(!path.exists(), "the corrupt file was moved, not copied");
    assert_eq!(
        std::fs::read_to_string(&quarantined).unwrap(),
        on_disk,
        "quarantine preserves the corrupt bytes for post-mortems"
    );
    assert_eq!(restarted.elite_archive().len(), 0, "restart is cold");

    // ... but healthy: it serves, and persistence works again.
    let response = restarted.submit(&request(2)).unwrap();
    assert!(!response.pareto_front.is_empty());
    let saved = restarted.save_archive(&path).unwrap();
    let third = MappingService::new();
    assert_eq!(
        third.restore_archive(&path).unwrap(),
        ArchiveLoad::Restored(saved)
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&quarantined);
}

/// A missing snapshot is a cold start, not an error — and quarantining
/// never invents files.
#[test]
fn missing_snapshot_is_a_cold_start() {
    let path = temp_file("missing");
    let service = MappingService::new();
    assert_eq!(
        service.restore_archive(&path).unwrap(),
        ArchiveLoad::Missing
    );
    assert!(!PathBuf::from(format!("{}.corrupt", path.display())).exists());
}

/// The atomic write protocol: a snapshot leaves no `.tmp` residue on
/// success, and an interrupted (torn) write still replaces the file in
/// one rename — older intact snapshots are never half-overwritten.
#[test]
fn snapshot_write_is_atomic_and_leaves_no_temp_residue() {
    let _guard = FaultPlan::guard();
    let path = temp_file("atomic");
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));

    let service = MappingService::new();
    service.submit(&request(3)).unwrap();
    service.save_archive(&path).unwrap();
    assert!(path.exists());
    assert!(!tmp.exists(), "temp file renamed away on success");
    let intact = std::fs::read_to_string(&path).unwrap();

    // A failed write (unwritable directory) must not disturb anything.
    let unwritable = PathBuf::from("/definitely/not/a/real/dir/archive.json");
    assert!(service.save_archive(&unwritable).is_err());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), intact);

    let _ = std::fs::remove_file(&path);
}
