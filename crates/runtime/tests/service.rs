//! Integration tests of the mapping service: cache soundness, parallel
//! determinism and the end-to-end request flow.

use mnc_core::EvaluatorBuilder;
use mnc_mpsoc::Platform;
use mnc_nn::models::{visformer_tiny, ModelPreset};
use mnc_optim::{ConfigEvaluator, Genome, MappingSearch, SearchConfig};
use mnc_runtime::{
    BatchConfig, CachedEvaluator, EvalCache, MappingRequest, MappingService, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn evaluator(samples: usize) -> Arc<mnc_core::Evaluator> {
    Arc::new(
        EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(samples)
        .build()
        .unwrap(),
    )
}

/// Property: for ≥100 random genomes, the evaluation served from the cache
/// is bit-identical to the fresh one.
#[test]
fn cached_evaluations_are_bit_identical_across_random_genomes() {
    let evaluator = evaluator(500);
    let cached = CachedEvaluator::new(Arc::clone(&evaluator), Arc::new(EvalCache::new()));
    let mut rng = StdRng::seed_from_u64(1234);

    for case in 0..120 {
        let genome = Genome::random(cached.network(), cached.platform(), &mut rng);
        // First call evaluates and fills the cache, second is served from it.
        let (fresh_config, fresh_result) = cached.evaluate_genome(&genome).unwrap();
        let (cached_config, cached_result) = cached.evaluate_genome(&genome).unwrap();
        assert_eq!(fresh_config, cached_config, "config differs at case {case}");
        assert_eq!(fresh_result, cached_result, "result differs at case {case}");
        // Bit-identity of every float, not just PartialEq:
        assert_eq!(
            fresh_result.average_latency_ms.to_bits(),
            cached_result.average_latency_ms.to_bits()
        );
        assert_eq!(
            fresh_result.average_energy_mj.to_bits(),
            cached_result.average_energy_mj.to_bits()
        );
        assert_eq!(
            fresh_result.objective.to_bits(),
            cached_result.objective.to_bits()
        );
    }
    let stats = cached.cache().stats();
    assert_eq!(stats.hits, 120);
    assert_eq!(stats.misses, 120);
}

/// Property: the cache key separates platforms and objective weights — an
/// entry produced under one evaluator state can never answer for another.
#[test]
fn cache_keys_differ_across_platforms_and_weights() {
    let network = visformer_tiny(ModelPreset::cifar100());
    let cache = Arc::new(EvalCache::new());

    let on_dual = CachedEvaluator::new(
        Arc::new(
            EvaluatorBuilder::new(network.clone(), Platform::dual_test())
                .validation_samples(500)
                .build()
                .unwrap(),
        ),
        Arc::clone(&cache),
    );
    let on_biglittle = CachedEvaluator::new(
        Arc::new(
            EvaluatorBuilder::new(network.clone(), Platform::edge_biglittle())
                .validation_samples(500)
                .build()
                .unwrap(),
        ),
        Arc::clone(&cache),
    );
    let latency_weighted = CachedEvaluator::new(
        Arc::new(
            EvaluatorBuilder::new(network.clone(), Platform::dual_test())
                .validation_samples(500)
                .objective_weights(mnc_core::ObjectiveWeights::latency_oriented())
                .build()
                .unwrap(),
        ),
        Arc::clone(&cache),
    );

    // Both platforms have two compute units, so one genome decodes on
    // either — but the cache keys must still differ.
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..32 {
        let genome = Genome::random(on_dual.network(), on_dual.platform(), &mut rng);
        let k_dual = on_dual.key_for(&genome);
        let k_biglittle = on_biglittle.key_for(&genome);
        let k_weighted = latency_weighted.key_for(&genome);
        assert_ne!(k_dual, k_biglittle, "platform not part of the key");
        assert_ne!(k_dual, k_weighted, "weights not part of the key");
        assert_ne!(k_biglittle, k_weighted);
    }

    // And the cached objectives really are weight-dependent.
    let genome = Genome::balanced(on_dual.network(), on_dual.platform());
    let (_, default_result) = on_dual.evaluate_genome(&genome).unwrap();
    let (_, weighted_result) = latency_weighted.evaluate_genome(&genome).unwrap();
    assert_ne!(default_result.objective, weighted_result.objective);
}

/// Same seed and budget on 1 thread vs N threads must yield the same
/// archive and Pareto front, with or without the cache.
#[test]
fn parallel_search_is_deterministic_across_thread_counts() {
    let evaluator = evaluator(500);
    let base = SearchConfig {
        generations: 4,
        population_size: 12,
        parallel: true,
        seed: 42,
        ..SearchConfig::fast()
    };

    let single = MappingSearch::new(
        evaluator.as_ref(),
        SearchConfig {
            threads: Some(1),
            ..base
        },
    )
    .run()
    .unwrap();
    let many = MappingSearch::new(
        evaluator.as_ref(),
        SearchConfig {
            threads: Some(8),
            ..base
        },
    )
    .run()
    .unwrap();
    let default_threads = MappingSearch::new(evaluator.as_ref(), base).run().unwrap();

    assert_eq!(single.archive().len(), many.archive().len());
    for (a, b) in single.archive().iter().zip(many.archive()) {
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.result, b.result);
    }
    assert_eq!(single.archive(), default_threads.archive());

    let front_single: Vec<_> = single.pareto_front().into_iter().cloned().collect();
    let front_many: Vec<_> = many.pareto_front().into_iter().cloned().collect();
    assert_eq!(front_single, front_many);

    // The cached evaluator preserves the same guarantee.
    let cached = CachedEvaluator::new(Arc::clone(&evaluator), Arc::new(EvalCache::new()));
    let cached_many = MappingSearch::new(
        &cached,
        SearchConfig {
            threads: Some(8),
            ..base
        },
    )
    .run()
    .unwrap();
    assert_eq!(single.archive(), cached_many.archive());
}

/// End-to-end acceptance: two identical requests return identical Pareto
/// fronts and the second is served ≥3× faster thanks to cache hits.
///
/// The margin was ≥5× before the evaluation fast path (closed-form
/// accuracy, cost tables, transform memoisation); with cold evaluations
/// now ~10-100× cheaper, both requests are dominated by the search-loop
/// work they share — genome operators, selection, result clones — so the
/// *ratio* shrank while both absolute times dropped. 3× keeps asserting
/// that warm hits skip the evaluation work without flaking on the
/// compressed margin.
#[test]
fn repeated_request_is_served_from_cache_at_least_3x_faster() {
    // A full-size model keeps the cold per-genome work (transform + perf
    // model) large enough to dominate the search-loop overhead both
    // requests share — the evaluation fast path made cold evaluations
    // ~10-100× cheaper, which is exactly the margin this test divides by.
    // The response cache is disabled so the repeat actually re-runs its
    // search against the *evaluation* cache (with it on, the repeat is a
    // verbatim fast-path replay and never touches the evaluator — that
    // path is covered by the pipeline tests).
    let service = MappingService::with_config(ServiceConfig {
        response_cache_entries: 0,
        ..Default::default()
    });
    let request = MappingRequest::new("visformer_cifar100", "dual_test")
        .validation_samples(1000)
        .generations(6)
        .population_size(16)
        .seed(3);

    let cold = service.submit(&request).unwrap();
    let warm = service.submit(&request).unwrap();

    assert_eq!(cold.pareto_front, warm.pareto_front);
    assert_eq!(cold.best_by_objective, warm.best_by_objective);
    assert_eq!(warm.stats.cache_misses, 0, "warm request re-evaluated");
    // The search-loop memo answers elite replays before the cache is even
    // consulted, so cache traffic counts *distinct* genomes: every one of
    // the warm request's fresh lookups is a hit, and both requests agree
    // on how many distinct genomes the (identical) search visited.
    assert_eq!(
        warm.stats.cache_hits,
        warm.stats.evaluations_performed as u64
    );
    assert_eq!(
        warm.stats.evaluations_performed,
        cold.stats.evaluations_performed
    );
    assert_eq!(
        warm.stats.evaluations,
        warm.stats.evaluations_performed + warm.stats.memo_hits
    );

    // Take the fastest of a few warm replays so a descheduled run on a
    // loaded CI machine cannot flake the assertion (every replay is
    // equivalent — all asserted identical).
    let mut warm_ms = warm.stats.elapsed_ms;
    for _ in 0..3 {
        let replay = service.submit(&request).unwrap();
        assert_eq!(replay.pareto_front, cold.pareto_front);
        assert_eq!(replay.stats.cache_misses, 0);
        warm_ms = warm_ms.min(replay.stats.elapsed_ms);
    }
    assert!(
        warm_ms * 3.0 <= cold.stats.elapsed_ms,
        "cold {:.2} ms vs warm {:.2} ms: speedup below 3x",
        cold.stats.elapsed_ms,
        warm_ms
    );
}

/// A mixed batch with duplicates, the shape the scheduler exists for:
/// two models × two platforms × two seeds plus exact repeats.
fn mixed_batch() -> Vec<MappingRequest> {
    let mut requests = Vec::new();
    for model in ["tiny_cnn_cifar10", "visformer_tiny_cifar100"] {
        for platform in ["dual_test", "edge_biglittle"] {
            for seed in [1u64, 2] {
                requests.push(
                    MappingRequest::new(model, platform)
                        .validation_samples(400)
                        .generations(3)
                        .population_size(8)
                        .seed(seed),
                );
            }
        }
    }
    // Duplicates: repeat every other request, one of them with an explicit
    // thread count (answer-neutral, must still coalesce).
    let duplicates: Vec<MappingRequest> = requests.iter().step_by(2).cloned().collect();
    requests.extend(duplicates);
    requests[8].threads = Some(2);
    requests
}

/// Property: for every request in a duplicate-laden mixed batch, the
/// batched response is bit-identical to the sequential `submit` response,
/// for `max_concurrent` of both 1 and N. Each service is fresh, so the
/// comparison covers the full cold search, not a cache replay.
#[test]
fn submit_batch_is_bit_identical_to_sequential_submit() {
    let batch = mixed_batch();

    let sequential_service = MappingService::new();
    let sequential: Vec<_> = batch
        .iter()
        .map(|request| sequential_service.submit(request).unwrap())
        .collect();

    for max_concurrent in [1usize, 4] {
        let service = MappingService::new();
        let report =
            service.submit_batch_with(&batch, &BatchConfig::new().max_concurrent(max_concurrent));
        assert_eq!(report.stats.requests, batch.len());
        assert_eq!(report.stats.unique_requests, 8);
        assert_eq!(report.stats.coalesced_requests, 4);

        for (index, (batched, reference)) in report.responses.iter().zip(&sequential).enumerate() {
            let batched = batched
                .as_ref()
                .unwrap_or_else(|e| panic!("request {index} failed in batch: {e}"));
            assert_eq!(
                batched.pareto_front, reference.pareto_front,
                "front differs at request {index}, max_concurrent {max_concurrent}"
            );
            assert_eq!(batched.best_by_objective, reference.best_by_objective);
            // Bit-identity of every float on the front, not just PartialEq.
            for (a, b) in batched.pareto_front.iter().zip(&reference.pareto_front) {
                assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
                assert_eq!(
                    a.result.average_energy_mj.to_bits(),
                    b.result.average_energy_mj.to_bits()
                );
                assert_eq!(
                    a.result.average_latency_ms.to_bits(),
                    b.result.average_latency_ms.to_bits()
                );
            }
        }
    }
}

/// Property: the shared cache's counters stay consistent under a
/// multi-threaded batch — fresh inserts never exceed compute-path misses,
/// residency never exceeds capacity, and the coalescing counters agree
/// with the batch accounting.
#[test]
fn batch_keeps_shared_cache_counters_consistent() {
    let service = MappingService::new();
    let batch = mixed_batch();
    let report = service.submit_batch_with(&batch, &BatchConfig::new().max_concurrent(4));
    for response in &report.responses {
        assert!(response.is_ok());
    }

    let stats = service.cache_stats();
    assert!(
        stats.insertions <= stats.misses,
        "insertions {} exceed misses {}",
        stats.insertions,
        stats.misses
    );
    assert!(
        stats.entries <= service.cache().capacity(),
        "residency {} exceeds capacity {}",
        stats.entries,
        service.cache().capacity()
    );
    assert!(stats.insertions as usize >= stats.entries);
    assert!(stats.coalesced <= stats.misses);
    assert!(stats.hits > 0, "batch with duplicates produced no reuse");

    // Replaying the whole batch is answered without a single fresh
    // evaluation — the scheduler coalesces within the batch and the cache
    // carries reuse across batches.
    let before = service.cache_stats();
    let replay = service.submit_batch_with(&batch, &BatchConfig::new().max_concurrent(4));
    for (fresh, replayed) in report.responses.iter().zip(&replay.responses) {
        assert_eq!(
            fresh.as_ref().unwrap().pareto_front,
            replayed.as_ref().unwrap().pareto_front
        );
    }
    let after = service.cache_stats();
    assert_eq!(after.insertions, before.insertions, "replay re-evaluated");
}

/// N identical requests in one batch run exactly one search and clone one
/// response for the rest.
#[test]
fn identical_requests_coalesce_onto_one_search() {
    let service = MappingService::new();
    let request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8);
    let batch = vec![request.clone(); 6];

    let report = service.submit_batch_with(&batch, &BatchConfig::new().max_concurrent(4));
    assert_eq!(report.stats.unique_requests, 1);
    assert_eq!(report.stats.coalesced_requests, 5);

    let leader = report.responses[0].as_ref().unwrap();
    for response in &report.responses[1..] {
        let response = response.as_ref().unwrap();
        assert_eq!(response.pareto_front, leader.pareto_front);
        assert_eq!(response.stats, leader.stats);
    }
    // Exactly one search's worth of fresh evaluations hit the cache.
    let stats = service.cache_stats();
    assert_eq!(stats.insertions, leader.stats.cache_misses);
}

/// The warm-start acceptance property: once the elite archive holds
/// same-model elites, a warm-started request with a stall window reaches a
/// feasible front no worse than the cold search while scheduling strictly
/// fewer evaluations. (Everything is deterministic — seeds, archive
/// contents, surrogate training — so this is a fixed comparison, not a
/// statistical one.)
#[test]
fn warm_start_reaches_no_worse_front_with_fewer_evaluations() {
    let request = MappingRequest::new("visformer_tiny_cifar100", "dual_test")
        .validation_samples(500)
        .generations(12)
        .population_size(12)
        .stall_generations(3)
        .seed(11);

    // Cold baseline: a fresh service, nothing to warm-start from.
    let cold = MappingService::new().submit(&request).unwrap();
    assert!(!cold.stats.early_stopped || cold.stats.generations_run <= 12);

    // Warmed service: a different-seed request populates the elite
    // archive, then the baseline request runs warm-started under a third
    // of the generation budget — the seeds put generation 0 at (or past)
    // the cold optimum, so the shrunken budget still reaches a front no
    // worse than the full cold search's.
    let service = MappingService::new();
    service.submit(&request.clone().seed(77)).unwrap();
    assert!(!service.elite_archive().is_empty());
    let warm = service
        .submit(&request.clone().generations(4).warm_start(true))
        .unwrap();

    assert!(warm.stats.warm_start_seeds > 0, "no seeds were injected");
    assert!(
        warm.stats.evaluations < cold.stats.evaluations,
        "warm start scheduled {} evaluations vs cold {}",
        warm.stats.evaluations,
        cold.stats.evaluations
    );
    let cold_best = cold.best_by_objective.as_ref().unwrap().result.objective;
    let warm_best = warm.best_by_objective.as_ref().unwrap().result.objective;
    assert!(
        warm_best <= cold_best,
        "warm best {warm_best} worse than cold best {cold_best}"
    );
    assert!(!warm.pareto_front.is_empty());
    assert!(warm.pareto_front.iter().all(|c| c.result.feasible));
}

/// Warm-start with an empty archive degrades gracefully to the cold
/// search, and cold requests are byte-for-byte unaffected by archive
/// state.
#[test]
fn warm_start_with_empty_archive_matches_cold_search() {
    let request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(300)
        .generations(3)
        .population_size(8);

    let service = MappingService::new();
    let warm_empty = service.submit(&request.clone().warm_start(true)).unwrap();
    assert_eq!(warm_empty.stats.warm_start_seeds, 0);

    // The cold response from a service whose archive now holds elites is
    // identical to a fresh service's: cold searches never read the
    // archive.
    let cold_after = service.submit(&request).unwrap();
    let cold_fresh = MappingService::new().submit(&request).unwrap();
    assert_eq!(cold_after.pareto_front, cold_fresh.pareto_front);
    assert_eq!(cold_after.best_by_objective, cold_fresh.best_by_objective);
    // And with no seeds available, the warm-started search was the same
    // search.
    assert_eq!(warm_empty.pareto_front, cold_fresh.pareto_front);
}

/// A parallel search over one of the new registry presets finishes within
/// the configured evaluation budget.
#[test]
fn parallel_search_on_new_preset_respects_budget() {
    let service = MappingService::new();
    let budget = 60;
    let request = MappingRequest::new("visformer_tiny_cifar100", "orin_agx")
        .validation_samples(500)
        .generations(10)
        .population_size(16)
        .max_evaluations(budget);

    let response = service.submit(&request).unwrap();
    assert_eq!(response.stats.evaluations, budget);
    assert!(response.stats.early_stopped);
    assert!(!response.pareto_front.is_empty());
    // Orin has four compute units, so decoded configurations use 4 stages.
    assert_eq!(
        response.pareto_front[0].config.num_stages(),
        4,
        "front configurations target the Orin preset"
    );
}
