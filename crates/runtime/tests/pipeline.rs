//! Pipeline-refactor acceptance tests: the staged `RequestPipeline` is
//! behaviour-preserving (batch vs sequential bit-identity over random
//! request mixes × worker counts), per-stage accounting is coherent, and
//! the persisted elite archive replays warm starts across a simulated
//! restart.

use mnc_runtime::{
    BatchConfig, MappingRequest, MappingService, PipelineStage, RuntimeError, STAGE_COUNT,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;

const MODELS: &[&str] = &["tiny_cnn_cifar10", "visformer_tiny_cifar100"];
const PLATFORMS: &[&str] = &["dual_test", "edge_biglittle"];

/// Draws one random (mostly valid) request.
fn random_request(rng: &mut StdRng) -> MappingRequest {
    let mut request = MappingRequest::new(
        MODELS[rng.random_range(0..MODELS.len())],
        PLATFORMS[rng.random_range(0..PLATFORMS.len())],
    )
    .validation_samples(200 + 100 * rng.random_range(0..3usize))
    .generations(1 + rng.random_range(0..3usize))
    .population_size(6 + 2 * rng.random_range(0..2usize))
    .seed(rng.random_range(0..5u64));
    if rng.random_range(0..4u32) == 0 {
        request = request.max_evaluations(5 + rng.random_range(0..20usize));
    }
    if rng.random_range(0..4u32) == 0 {
        request = request.threads(1 + rng.random_range(0..3usize));
    }
    request
}

/// A random mix: valid requests, exact duplicates, and sprinkled-in
/// invalid/unknown requests whose errors must survive batching verbatim.
fn random_mix(rng: &mut StdRng, len: usize) -> Vec<MappingRequest> {
    let mut requests: Vec<MappingRequest> = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.random_range(0..10u32);
        if roll == 0 {
            requests.push(MappingRequest::new(
                "no_such_model",
                PLATFORMS[rng.random_range(0..PLATFORMS.len())],
            ));
        } else if roll == 1 {
            let mut invalid = random_request(rng);
            invalid.population_size = 1;
            requests.push(invalid);
        } else if roll <= 4 && !requests.is_empty() {
            // Exact duplicate of an earlier request (the coalescer's food).
            let index = rng.random_range(0..requests.len());
            requests.push(requests[index].clone());
        } else {
            requests.push(random_request(rng));
        }
    }
    requests
}

fn assert_same_outcome(
    reference: &Result<mnc_runtime::MappingResponse, RuntimeError>,
    batched: &Result<mnc_runtime::MappingResponse, RuntimeError>,
    context: &str,
) {
    match (reference, batched) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.pareto_front, b.pareto_front, "front differs: {context}");
            assert_eq!(a.best_by_objective, b.best_by_objective, "{context}");
            for (x, y) in a.pareto_front.iter().zip(&b.pareto_front) {
                assert_eq!(x.result.objective.to_bits(), y.result.objective.to_bits());
                assert_eq!(
                    x.result.average_energy_mj.to_bits(),
                    y.result.average_energy_mj.to_bits()
                );
                assert_eq!(
                    x.result.average_latency_ms.to_bits(),
                    y.result.average_latency_ms.to_bits()
                );
            }
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "error differs: {context}"),
        (a, b) => panic!("outcome kind differs: {context}: {a:?} vs {b:?}"),
    }
}

/// Property: over random request mixes (duplicates, invalid and unknown
/// requests included) and worker counts, batched responses through the
/// pipeline are bit-identical to sequential `submit` — the refactor's
/// behaviour-preservation acceptance criterion.
#[test]
fn pipeline_batches_match_sequential_submit_over_random_mixes() {
    let mut rng = StdRng::seed_from_u64(0x9e37);
    for case in 0..4u64 {
        let mix = random_mix(&mut rng, 8 + (case as usize) * 2);

        let sequential_service = MappingService::new();
        let sequential: Vec<_> = mix
            .iter()
            .map(|request| sequential_service.submit(request))
            .collect();

        for max_concurrent in [1usize, 4] {
            let service = MappingService::new();
            let report =
                service.submit_batch_with(&mix, &BatchConfig::new().max_concurrent(max_concurrent));
            assert_eq!(report.responses.len(), mix.len());
            for (index, (reference, batched)) in
                sequential.iter().zip(&report.responses).enumerate()
            {
                assert_same_outcome(
                    reference,
                    batched,
                    &format!("case {case}, request {index}, workers {max_concurrent}"),
                );
            }
            // Coalesced duplicates must carry their leader's stats
            // verbatim — the "one search per distinct request" guarantee.
            assert_eq!(report.stats.unique_requests, report.leader_positions.len());
        }
    }
}

/// The per-request stage trace is coherent: every stage non-negative,
/// the search stage dominant for a cold request, and the total bounded
/// by the request's wall time.
#[test]
fn stage_trace_is_coherent_per_request() {
    let service = MappingService::new();
    let request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8);
    let response = service.submit(&request).unwrap();
    let trace = response.stats.stage_micros;
    assert_eq!(trace.len(), STAGE_COUNT);
    assert!(trace.iter().all(|&micros| micros >= 0.0));
    assert!(
        trace[PipelineStage::Search.index()] > 0.0,
        "the search stage ran"
    );
    assert!(
        response.stats.stage_micros_total() <= response.stats.elapsed_ms * 1e3 + 1.0,
        "stage totals exceed the request wall time"
    );
    // A cold request spends its time in ResolveEvaluator (evaluator
    // build) and Search; bookkeeping stages are comparatively free.
    assert!(
        trace[PipelineStage::Normalize.index()] + trace[PipelineStage::Fingerprint.index()]
            < response.stats.elapsed_ms * 1e3
    );
}

/// Service-lifetime stage counters add up across a mixed workload.
#[test]
fn pipeline_counters_add_up_across_batches_and_errors() {
    let service = MappingService::new();
    let ok = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(300)
        .generations(2)
        .population_size(8);
    let batch = vec![ok.clone(), ok.clone(), ok.clone().seed(3)];
    service.submit_batch(&batch);
    service.submit(&ok).unwrap();
    let _ = service.submit(&MappingRequest::new("missing", "dual_test"));

    let stats = service.pipeline_stats();
    // 2 batch leaders + 1 direct + 1 rejected entered the request path.
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.coalesced_requests, 1);
    // The direct re-submit of `ok` replays the batch leader's stored
    // response on the fast path, so only the two batch leaders searched.
    assert_eq!(stats.searches_run, 2);
    assert_eq!(stats.fast_path_answered, 1);
    assert_eq!(stats.stage(PipelineStage::Normalize).errors, 1);
    assert_eq!(stats.stage(PipelineStage::Search).entered, 2);
    assert!(stats.evaluations_scheduled >= stats.evaluations_performed);
    assert_eq!(
        stats.evaluator_builds + stats.evaluator_pool_hits,
        stats.stage(PipelineStage::ResolveEvaluator).entered
    );
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mnc_pipeline_test_{tag}_{}.json",
        std::process::id()
    ))
}

/// The elite archive round-trips through its JSON snapshot: a restored
/// service warm-starts exactly like the one that wrote the snapshot
/// (the ISSUE's restart acceptance property, with equality).
#[test]
fn persisted_archive_replays_warm_starts_after_restart() {
    let request = MappingRequest::new("visformer_tiny_cifar100", "dual_test")
        .validation_samples(400)
        .generations(4)
        .population_size(8);

    // First life: two cold submits fill the archive; snapshot; then the
    // pre-restart warm request.
    let service = MappingService::new();
    service.submit(&request).unwrap();
    service.submit(&request.clone().seed(77)).unwrap();
    let path = temp_file("archive");
    let saved = service.save_archive(&path).unwrap();
    assert!(saved > 0);
    assert_eq!(saved, service.elite_archive().len());

    let warm_request = request
        .clone()
        .seed(4242)
        .generations(6)
        .stall_generations(2)
        .warm_start(true);
    let warm_before = service.submit(&warm_request).unwrap();
    assert!(warm_before.stats.warm_start_seeds > 0);

    // Simulated restart: a fresh service loads the snapshot. Its archive
    // equals the snapshotted one, so the warm request reaches the same
    // front with exactly as many evaluations (no-worse / no-more, with
    // equality because everything downstream is deterministic).
    let restarted = MappingService::with_archive_from(&path).unwrap();
    assert_eq!(restarted.elite_archive().len(), saved);
    // Snapshot the freshly restored archive before it absorbs new
    // responses: restore must be lossless.
    let roundtrip = temp_file("archive_roundtrip");
    restarted.save_archive(&roundtrip).unwrap();
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        std::fs::read_to_string(&roundtrip).unwrap(),
        "snapshot → restore → snapshot must be lossless"
    );
    let warm_after = restarted.submit(&warm_request).unwrap();
    assert!(warm_after.stats.evaluations <= warm_before.stats.evaluations);
    assert_eq!(warm_after.stats.evaluations, warm_before.stats.evaluations);
    assert_eq!(warm_after.pareto_front, warm_before.pareto_front);
    assert_eq!(warm_after.best_by_objective, warm_before.best_by_objective);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&roundtrip);
}

/// Malformed, missing and version-skewed snapshots fail structurally.
#[test]
fn archive_persistence_errors_are_structured() {
    let service = MappingService::new();

    let missing = temp_file("missing");
    assert!(matches!(
        service.load_archive(&missing),
        Err(RuntimeError::Persistence { .. })
    ));

    let malformed = temp_file("malformed");
    std::fs::write(&malformed, "this is not json").unwrap();
    assert!(matches!(
        service.load_archive(&malformed),
        Err(RuntimeError::Persistence { .. })
    ));
    std::fs::write(&malformed, "{\"version\": 999, \"shapes\": []}").unwrap();
    let error = service.load_archive(&malformed).unwrap_err();
    match &error {
        RuntimeError::Persistence { reason, .. } => {
            assert!(reason.contains("version"), "unhelpful reason: {reason}")
        }
        other => panic!("version skew gave {other:?}"),
    }
    let _ = std::fs::remove_file(&malformed);

    // Unwritable path.
    let unwritable = PathBuf::from("/definitely/not/a/real/dir/archive.json");
    assert!(matches!(
        service.save_archive(&unwritable),
        Err(RuntimeError::Persistence { .. })
    ));
}
