//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] data model to JSON text and parses it back.
//!
//! Floating-point numbers are printed with Rust's shortest round-trip
//! formatting (`{:?}`), so `from_str(&to_string(&x)?)? == x` holds exactly
//! for every finite `f64`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest representation that round-trips.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<u64>().map(Value::UInt))
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of unescaped bytes at once.
                    // `"` and `\` are ASCII, so they never appear inside
                    // a multi-byte UTF-8 sequence and the run boundary is
                    // always a character boundary; one validation covers
                    // the run (validating from here to the end of input
                    // per character would be quadratic in document size).
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![1.5f64, -0.25, 1e-9, 123456789.0];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let s = "quote \" backslash \\ newline \n unicode é".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);

        let opt: Option<Vec<usize>> = Some(vec![1, 2, 3]);
        let back: Option<Vec<usize>> = from_str(&to_string(&opt).unwrap()).unwrap();
        assert_eq!(opt, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(usize, String)> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_above_i64_max_round_trips_exactly() {
        let seeds: Vec<u64> = vec![0, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX];
        let back: Vec<u64> = from_str(&to_string(&seeds).unwrap()).unwrap();
        assert_eq!(seeds, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<f64>("1.0 x").is_err());
    }
}
