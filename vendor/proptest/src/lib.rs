//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range strategies over `f64`/integers, tuple strategies, nested
//! [`collection::vec`] strategies, and the [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are drawn from a fixed-seed
//! deterministic generator (so failures reproduce trivially) and failing
//! cases are **not shrunk** — the panic message reports the failed
//! assertion only.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + (self.end - self.start) * rng.random::<f64>()
        }
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A:0);
    impl_tuple_strategy!(A:0, B:1);
    impl_tuple_strategy!(A:0, B:1, C:2);
    impl_tuple_strategy!(A:0, B:1, C:2, D:3);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                start: range.start,
                end: range.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    /// Creates a strategy generating vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.start..self.len.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test case runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Number of cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases drawn per property test.
        pub cases: usize,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: usize) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Drives the cases of one property test with a deterministic RNG.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x70726f70_74657374),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> usize {
            self.config.cases
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Draws one value from a strategy (used by the generated test bodies).
pub fn sample<S: strategy::Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.sample(rng)
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, v in proptest::collection::vec(0usize..9, 1..4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..runner.cases() {
                $( let $arg = $crate::sample(&($strategy), runner.rng()); )+
                let outcome: Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(error) = outcome {
                    panic!("property {} failed at case {case}: {error}", stringify!($name));
                }
            }
        }
    )*};
}

/// Asserts inside a property body, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}
