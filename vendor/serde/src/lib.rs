//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace vendors a small, self-contained serialization framework
//! under the familiar `serde` name. It provides the subset the workspace
//! actually uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits built around an owned
//!   [`value::Value`] data model (instead of serde's visitor machinery),
//! * `#[derive(Serialize, Deserialize)]` for structs and enums (named,
//!   tuple and unit forms; externally-tagged enum representation),
//! * implementations for the primitive types, `String`, `Cow`, `Option`,
//!   `Vec`, fixed-size arrays, tuples and maps.
//!
//! The representation is compatible with the vendored `serde_json`, which
//! renders [`value::Value`] trees to JSON text and parses them back, so
//! `serde_json::from_str(&serde_json::to_string(&x)?)? == x` holds for any
//! type built from the pieces above.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Value};

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::rc::Rc::new)
    }
}

impl<T> Serialize for std::borrow::Cow<'_, T>
where
    T: Serialize + ToOwned + ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Deserialization always produces the owned variant; borrowed content
// would need to outlive the parsed `Value` tree, which the owned data
// model cannot express.
impl<T> Deserialize for std::borrow::Cow<'static, T>
where
    T: ToOwned + ?Sized,
    T::Owned: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::Owned::from_value(value).map(std::borrow::Cow::Owned)
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| DeError::expected("integer", value))?;
                <$ty>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($ty)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| DeError::expected("integer", value))?;
                <$ty>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($ty)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            // Values above i64::MAX keep their own variant so the JSON
            // round trip stays bit-exact (a float would round them).
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError::new("array length mismatch".to_string()))
            }
            other => Err(DeError::expected(&format!("sequence of length {N}"), other)),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx])?,)+
                    )),
                    other => Err(DeError::expected(
                        &format!("sequence of length {}", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort entries so serialization is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}
