//! The owned data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// An owned, JSON-shaped value tree.
///
/// Maps preserve insertion order so that serialization is deterministic and
/// derive-generated round trips are field-order stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// An unsigned integer above `i64::MAX` (kept separate so every `u64`
    /// survives a JSON round trip bit-exactly).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short tag describing the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, accepting both floats and integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Fetches a required field from a map value (helper for derived code).
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    value
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Fetches a required element from a sequence value (helper for derived
/// code on tuple structs and tuple variants).
pub fn element(value: &Value, index: usize) -> Result<&Value, DeError> {
    value
        .as_seq()
        .ok_or_else(|| DeError::expected("sequence", value))?
        .get(index)
        .ok_or_else(|| DeError::new(format!("missing element {index}")))
}

/// Deserialization error for the vendored serde framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}
