//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the narrow API the workspace's benches use:
//! [`Criterion::benchmark_group`], `group.sample_size(n)`,
//! `group.bench_function(id, |b| b.iter(...))`, `group.finish()` and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up once, then timed for `sample_size` iterations, and the mean
//! per-iteration wall time is printed. No statistics beyond that — the
//! point is that `cargo bench` runs and produces comparable numbers, not
//! publication-grade confidence intervals.

use std::time::Instant;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a harness with the default sample size (10).
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark("", &id.into(), 10, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark(group: &str, id: &str, sample_size: usize, f: &mut impl FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        iterations: 1,
        elapsed_ns: 0.0,
    };
    // One warm-up pass, then the timed pass.
    f(&mut bencher);
    bencher.iterations = sample_size as u64;
    bencher.elapsed_ns = 0.0;
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / sample_size as f64;
    println!("bench {label}: {} per iteration", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs `routine` the configured number of times, accumulating wall
    /// time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

/// Re-export matching criterion's `black_box` (std's suffices here).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
