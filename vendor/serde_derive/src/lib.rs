//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The offline build environment has no `syn`/`quote`, so this macro parses
//! the item declaration directly from the `proc_macro::TokenStream`. It
//! supports the shapes used in this workspace:
//!
//! * structs with named fields, tuple structs and unit structs,
//! * enums with unit, tuple and struct variants (externally tagged),
//! * non-generic items only (the workspace derives on concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a struct or enum declaration.
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 1 } => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::value::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "serde::value::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::value::field(value, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct { arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!("serde::Deserialize::from_value(serde::value::element(value, {i})?)?")
                })
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum { variants } => deserialize_enum_body(&name, variants),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::value::Value) -> Result<Self, serde::value::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn serialize_variant_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("{name}::{v} => serde::value::Value::Str(\"{v}\".to_string()),")
        }
        VariantKind::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let inner = if *arity == 1 {
                "serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!("serde::value::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{v}({binds}) => serde::value::Value::Map(vec![(\"{v}\".to_string(), {inner})]),",
                binds = binders.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => serde::value::Value::Map(vec![(\"{v}\".to_string(), serde::value::Value::Map(vec![{entries}]))]),",
                binds = fields.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as strings; data variants as single-entry maps.
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                unit_arms.push(format!("\"{v}\" => Ok({name}::{v}),"));
            }
            VariantKind::Tuple(arity) => {
                let init = if *arity == 1 {
                    format!("Ok({name}::{v}(serde::Deserialize::from_value(inner)?))")
                } else {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| {
                            format!(
                                "serde::Deserialize::from_value(serde::value::element(inner, {i})?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name}::{v}({}))", items.join(", "))
                };
                data_arms.push(format!("\"{v}\" => {{ {init} }}"));
            }
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::from_value(serde::value::field(inner, \"{f}\")?)?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
         serde::value::Value::Str(tag) => match tag.as_str() {{\n\
         {units}\n\
         other => Err(serde::value::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }},\n\
         serde::value::Value::Map(entries) if entries.len() == 1 => {{\n\
         let (tag, inner) = &entries[0];\n\
         match tag.as_str() {{\n\
         {datas}\n\
         other => Err(serde::value::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }}\n\
         }},\n\
         other => Err(serde::value::DeError::expected(\"enum representation\", other)),\n\
         }}",
        units = unit_arms.join("\n"),
        datas = data_arms.join("\n"),
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generic types ({name})");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => (
                name,
                Shape::NamedStruct {
                    fields: parse_named_fields(g.stream()),
                },
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => (
                name,
                Shape::TupleStruct {
                    arity: count_top_level_fields(g.stream()),
                },
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => (
                name,
                Shape::Enum {
                    variants: parse_variants(g.stream()),
                },
            ),
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Splits a token stream on commas that sit outside angle brackets (groups
/// nest naturally as single `TokenTree::Group` tokens, but `<...>` does
/// not, so the angle depth has to be tracked by hand).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks never empty").push(token);
    }
    chunks.retain(|chunk| !chunk.is_empty());
    chunks
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extracts field names from the body of a braced struct or variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            loop {
                match chunk.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        i += 1;
                        if let Some(TokenTree::Group(g)) = chunk.get(i) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                i += 1;
                            }
                        }
                    }
                    Some(TokenTree::Ident(id)) => return id.to_string(),
                    other => panic!("expected field name, found {other:?}"),
                }
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            // Skip attributes / doc comments on the variant.
            while let Some(TokenTree::Punct(p)) = chunk.get(i) {
                if p.as_char() == '#' {
                    i += 2;
                } else {
                    break;
                }
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_top_level_fields(g.stream()))
                }
                None => VariantKind::Unit,
                other => panic!("unsupported variant body for {name}: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}
