//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the API this workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`] /
//! [`RngExt::random_range`] and [`seq::SliceRandom::shuffle`] — backed by a
//! deterministic xoshiro256** generator. Sequences are stable across
//! platforms and releases, which the reproducibility tests in this
//! repository rely on.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface used throughout the workspace.
pub trait RngExt {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its canonical distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range)
    }
}

/// Types samplable by [`RngExt::random`].
pub trait Random {
    /// Samples one value.
    fn random<R: RngExt>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`RngExt::random_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from the half-open range.
    fn sample_uniform<R: RngExt>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngExt>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Debiased multiply-shift (Lemire); the rejection loop runs
                // extremely rarely for the small spans used here.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone || zone == 0 {
                        return range.start.wrapping_add((raw % span) as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the conventional way to fill xoshiro
            // state from a small seed.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n2 = s2 ^ s0;
            let n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            self.state = [n0, n1, n2, n3.rotate_left(45)];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngExt;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngExt>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngExt>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(3..17usize);
            assert!((3..17).contains(&n));
            let b = rng.random_range(0..8u8);
            assert!(b < 8);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
