//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset this workspace uses — `slice.par_iter().map(f)
//! .collect::<Vec<_>>()`, [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! and [`current_num_threads`] — on top of `std::thread::scope`.
//!
//! Results are always collected **in input order**, so a parallel map is
//! observationally identical to its sequential counterpart whenever the
//! mapped function is pure. The search determinism guarantees in
//! `mnc_optim` and `mnc_runtime` rest on exactly this property.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel iterator will use on this thread:
/// the installed pool size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building a thread pool (never produced by this stand-in; kept for
/// API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = machine parallelism).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool: parallel iterators run inside
/// [`ThreadPool::install`] use its configured thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it creates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|cell| cell.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|cell| cell.set(previous));
        result
    }

    /// The configured thread count (0 = machine parallelism).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// The traits a caller imports to get `.par_iter()`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Parallel iterators over slices.
pub mod iter {
    use super::{current_num_threads, AtomicUsize, Mutex, Ordering};

    /// Conversion into a borrowing parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Creates the parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParSliceIter<'data, T>;
        fn par_iter(&'data self) -> ParSliceIter<'data, T> {
            ParSliceIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParSliceIter<'data, T>;
        fn par_iter(&'data self) -> ParSliceIter<'data, T> {
            ParSliceIter { slice: self }
        }
    }

    /// The operations shared by this stand-in's parallel iterators.
    pub trait ParallelIterator: Sized {
        /// Item type.
        type Item;

        /// Maps each item through `op` in parallel.
        fn map<R, F>(self, op: F) -> ParMap<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync,
            R: Send,
        {
            ParMap { base: self, op }
        }

        /// Drives the iterator and collects results in input order.
        fn collect<C>(self) -> C
        where
            Self: ParallelDrive,
            C: FromIterator<<Self as ParallelDrive>::Output>,
        {
            self.drive().into_iter().collect()
        }
    }

    /// Internal: how a composed iterator actually executes.
    pub trait ParallelDrive {
        /// Final element type produced.
        type Output: Send;
        /// Runs the pipeline, returning outputs in input order.
        fn drive(self) -> Vec<Self::Output>;
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParSliceIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParallelIterator for ParSliceIter<'data, T> {
        type Item = &'data T;
    }

    /// A mapped parallel iterator.
    pub struct ParMap<B, F> {
        base: B,
        op: F,
    }

    impl<'data, T, R, F> ParallelIterator for ParMap<ParSliceIter<'data, T>, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        type Item = R;
    }

    impl<'data, T, R, F> ParallelDrive for ParMap<ParSliceIter<'data, T>, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        type Output = R;

        fn drive(self) -> Vec<R> {
            parallel_map_slice(self.base.slice, &self.op)
        }
    }

    /// Ordered parallel map over a slice: work-shared via an atomic cursor,
    /// results written back by index.
    fn parallel_map_slice<'data, T, R, F>(slice: &'data [T], op: &F) -> Vec<R>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        let threads = current_num_threads().min(slice.len().max(1));
        if threads <= 1 || slice.len() < 2 {
            return slice.iter().map(op).collect();
        }

        let slots: Vec<Mutex<Option<R>>> = (0..slice.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = slice.get(index) else {
                        break;
                    };
                    let result = op(item);
                    *slots[index].lock().expect("slot lock never poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock never poisoned")
                    .expect("every index visited by the cursor")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            assert_eq!(super::current_num_threads(), 1);
            vec![1usize, 2, 3].par_iter().map(|x| x + 1).collect()
        });
        assert_eq!(out, vec![2, 3, 4]);
        assert!(super::current_num_threads() >= 1);
    }
}
