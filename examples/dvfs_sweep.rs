//! DVFS ablation: sweep the frequency level of every stage's compute unit
//! for a fixed partitioning/mapping and show the latency/energy trade-off
//! the `ϑ` dimension of the search space contributes.
//!
//! ```text
//! cargo run --example dvfs_sweep
//! ```

use map_and_conquer::core::{DvfsAssignment, EvaluatorBuilder, Mapping, MappingConfig};
use map_and_conquer::dynamic::{IndicatorMatrix, PartitionMatrix};
use map_and_conquer::mpsoc::Platform;
use map_and_conquer::nn::models::{visformer, ModelPreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(2000)
        .build()?;

    // A fixed, paper-style partitioning: the first stage keeps 5/8 of every
    // layer's width, the two DLA stages share the rest; all features are
    // forwarded.
    let partition = PartitionMatrix::from_stage_fractions(&network, &[0.625, 0.25, 0.125])?;
    let indicator = IndicatorMatrix::full(&network, 3);
    let mapping = Mapping::identity(&platform);

    println!("level | latency [ms] | energy [mJ] | avg power [W]");
    println!("------+--------------+-------------+--------------");
    let min_levels = platform
        .compute_units()
        .iter()
        .map(|cu| cu.dvfs().num_levels())
        .min()
        .expect("platform has compute units");
    let mut best_energy = f64::INFINITY;
    let mut best_level = 0;
    for level in 0..min_levels {
        let dvfs = DvfsAssignment::new(vec![level; 3], &mapping, &platform)?;
        let config =
            MappingConfig::new(partition.clone(), indicator.clone(), mapping.clone(), dvfs)?;
        let result = evaluator.evaluate(&config)?;
        println!(
            "{level:>5} | {:>12.2} | {:>11.2} | {:>12.2}",
            result.average_latency_ms,
            result.average_energy_mj,
            result.average_energy_mj / result.average_latency_ms
        );
        if result.average_energy_mj < best_energy {
            best_energy = result.average_energy_mj;
            best_level = level;
        }
    }
    println!(
        "\nthe most energy-efficient operating point of this sweep is level {best_level}: \
         running everything at the maximum frequency is latency-optimal but not energy-optimal, \
         which is why the search treats ϑ as a first-class decision variable."
    );
    Ok(())
}
