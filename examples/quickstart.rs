//! Quickstart: evaluate the single-CU baselines and a first dynamic
//! mapping of Visformer on the AGX Xavier model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use map_and_conquer::core::{EvaluatorBuilder, MappingConfig};
use map_and_conquer::mpsoc::{CuId, Platform};
use map_and_conquer::nn::models::{visformer, ModelPreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The model side: a Visformer-style network for CIFAR-100.
    let network = visformer(ModelPreset::cifar100());
    println!("{network}");
    let cost = network.total_cost();
    println!(
        "total workload: {:.1} MMACs, {:.1} MB of weights\n",
        cost.macs / 1e6,
        cost.weight_bytes / 1e6
    );

    // 2. The hardware side: the NVIDIA Jetson AGX Xavier preset
    //    (GPU + 2 DLAs sharing LPDDR4x).
    let platform = Platform::agx_xavier();
    println!("{platform}");

    // 3. An evaluator bundles network, platform, accuracy model and
    //    constraints.
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone()).build()?;

    // 4. The single-compute-unit baselines of the paper's Table II.
    let gpu = evaluator.baseline_single_cu(CuId(0))?;
    let dla = evaluator.baseline_single_cu(CuId(1))?;
    println!(
        "{:<12} {:>9.2} ms {:>9.2} mJ  top-1 {:.2}%",
        gpu.label,
        gpu.latency_ms,
        gpu.energy_mj,
        gpu.accuracy * 100.0
    );
    println!(
        "{:<12} {:>9.2} ms {:>9.2} mJ  top-1 {:.2}%",
        dla.label,
        dla.latency_ms,
        dla.energy_mj,
        dla.accuracy * 100.0
    );

    // 5. A first Map-and-Conquer configuration: even width split across the
    //    three compute units, full feature-map reuse, maximum frequencies.
    let config = MappingConfig::uniform(&network, &platform)?;
    let result = evaluator.evaluate(&config)?;
    println!(
        "{:<12} {:>9.2} ms {:>9.2} mJ  top-1 {:.2}%  (worst case {:.2} ms, {:.1}% early exits)",
        "map-conquer",
        result.average_latency_ms,
        result.average_energy_mj,
        result.accuracy * 100.0,
        result.worst_case_latency_ms,
        result.early_exit_fraction() * 100.0
    );
    println!(
        "\nenergy gain vs GPU-only: {:.2}x   speedup vs DLA-only: {:.2}x",
        gpu.energy_mj / result.average_energy_mj,
        dla.latency_ms / result.average_latency_ms
    );
    Ok(())
}
