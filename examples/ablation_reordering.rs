//! Ablation of the channel-importance reordering step (paper §V-D): the
//! same partitioned configuration is evaluated with importance-ranked
//! channel assignment and with the original (identity) channel order.
//!
//! ```text
//! cargo run --example ablation_reordering
//! ```

use map_and_conquer::core::{EvaluatorBuilder, MappingConfig};
use map_and_conquer::mpsoc::Platform;
use map_and_conquer::nn::models::{visformer, ModelPreset};
use map_and_conquer::nn::ImportanceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let config = MappingConfig::uniform(&network, &platform)?;

    // Importance-ranked channels (the paper's method): synthetic Taylor-like
    // scores with a heavy tail.
    let ranked = EvaluatorBuilder::new(network.clone(), platform.clone())
        .importance(ImportanceModel::synthetic(&network, 2023, 1.5))
        .validation_samples(4000)
        .build()?
        .evaluate(&config)?;

    // Ablation: identity ordering — every channel carries the same mass, so
    // the early stages hold no more information than their width fraction.
    let unranked = EvaluatorBuilder::new(network.clone(), platform.clone())
        .importance(ImportanceModel::uniform(&network))
        .validation_samples(4000)
        .build()?
        .evaluate(&config)?;

    println!("                      | ranked channels | original order");
    println!("----------------------+-----------------+----------------");
    println!(
        "top-1 accuracy        | {:>14.2}% | {:>13.2}%",
        ranked.accuracy * 100.0,
        unranked.accuracy * 100.0
    );
    println!(
        "early-exit fraction   | {:>14.1}% | {:>13.1}%",
        ranked.early_exit_fraction() * 100.0,
        unranked.early_exit_fraction() * 100.0
    );
    println!(
        "average latency [ms]  | {:>15.2} | {:>14.2}",
        ranked.average_latency_ms, unranked.average_latency_ms
    );
    println!(
        "average energy [mJ]   | {:>15.2} | {:>14.2}",
        ranked.average_energy_mj, unranked.average_energy_mj
    );
    println!(
        "\nranking the channels by importance before partitioning lets the first stage terminate \
         {:.1}% more of the inputs and saves {:.1}% energy on average.",
        (ranked.early_exit_fraction() - unranked.early_exit_fraction()) * 100.0,
        (1.0 - ranked.average_energy_mj / unranked.average_energy_mj) * 100.0
    );
    Ok(())
}
