//! Demo of the JSON wire front-end: boot `mnc-server` on an ephemeral
//! port, drive it with the wire client, and show that the remote answer
//! matches in-process serving — plus archive persistence across a
//! restart.
//!
//! ```text
//! cargo run --release --example wire_demo
//! ```

use map_and_conquer::runtime::{MappingRequest, MappingService};
use map_and_conquer::server::{spawn_on_ephemeral_port, RequestLimits, WireClient};
use map_and_conquer::wire::WireBatch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let archive_dir = std::env::temp_dir().join(format!("mnc_wire_demo_{}", std::process::id()));
    std::fs::create_dir_all(&archive_dir)?;

    let handle = spawn_on_ephemeral_port(Some(archive_dir.clone()), RequestLimits::default())?;
    println!("mnc-server listening on {}", handle.addr());

    let mut client = WireClient::connect(handle.addr())?;
    client.ping()?;
    println!("models over the wire:    {}", client.models()?.join(", "));
    println!(
        "platforms over the wire: {}\n",
        client.platforms()?.join(", ")
    );

    let request = MappingRequest::new("visformer_tiny_cifar100", "dual_test")
        .validation_samples(800)
        .generations(6)
        .population_size(12);

    // One request over TCP vs the same request in-process: identical
    // fronts — the server drives the same staged pipeline.
    let over_wire = client.submit(&request)?;
    let in_process = MappingService::new().submit(&request)?;
    assert_eq!(over_wire.pareto_front, in_process.pareto_front);
    println!(
        "submit over the wire: {} Pareto points, {} evaluations, {:.1} ms — identical to in-process",
        over_wire.pareto_front.len(),
        over_wire.stats.evaluations,
        over_wire.stats.elapsed_ms,
    );

    // A duplicate-laden batch coalesces server-side.
    let report = client.submit_batch(WireBatch {
        requests: vec![request.clone(), request.clone(), request.clone().seed(9)],
        config: Default::default(),
    })?;
    println!(
        "batch over the wire: {} requests, {} searches run, {} coalesced",
        report.stats.requests, report.stats.unique_requests, report.stats.coalesced_requests,
    );

    // Per-stage counters travel in the Stats payload.
    let stats = client.stats()?;
    println!("\nserver pipeline stages:");
    for stage in &stats.pipeline.stages {
        println!(
            "  {:<17} {:>4} entered, {:>8.1} ms busy",
            stage.stage,
            stage.entered,
            stage.busy_micros as f64 / 1e3
        );
    }
    println!(
        "cache: {:.1}% hit ratio over {} lookups; archive: {} elite genomes",
        stats.cache.hit_ratio() * 100.0,
        stats.cache.hits + stats.cache.misses,
        stats.archive_genomes,
    );

    // Persist the elite archive, restart, and warm-start from it.
    let persisted = client.persist()?;
    println!(
        "\npersisted {} elite genomes to {}",
        persisted.genomes, persisted.path
    );
    client.shutdown()?;
    handle.join()?;

    let handle = spawn_on_ephemeral_port(Some(archive_dir.clone()), RequestLimits::default())?;
    let mut client = WireClient::connect(handle.addr())?;
    let warm = client.submit(
        &request
            .clone()
            .seed(4242)
            .generations(3)
            .stall_generations(2)
            .warm_start(true),
    )?;
    println!(
        "after restart: warm-started search injected {} persisted seeds, {} evaluations, best obj {}",
        warm.stats.warm_start_seeds,
        warm.stats.evaluations,
        warm.best_by_objective
            .as_ref()
            .map(|c| format!("{:.3}", c.result.objective))
            .unwrap_or_else(|| "-".to_string()),
    );

    client.shutdown()?;
    handle.join()?;
    let _ = std::fs::remove_dir_all(&archive_dir);
    Ok(())
}
