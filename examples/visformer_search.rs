//! Run the evolutionary mapping search for Visformer on the AGX Xavier
//! model and report the Pareto front plus the paper-style "Ours-L" /
//! "Ours-E" picks.
//!
//! ```text
//! cargo run --release --example visformer_search
//! ```

use map_and_conquer::core::EvaluatorBuilder;
use map_and_conquer::mpsoc::{CuId, Platform};
use map_and_conquer::nn::models::{visformer, ModelPreset};
use map_and_conquer::optim::{MappingSearch, SearchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network, platform)
        .validation_samples(4000)
        .build()?;

    let search_config = SearchConfig {
        generations: 20,
        population_size: 24,
        seed: 42,
        parallel: true,
        ..SearchConfig::paper()
    };
    println!(
        "searching: {} generations x {} candidates ...",
        search_config.generations, search_config.population_size
    );
    let outcome = MappingSearch::new(&evaluator, search_config).run()?;
    println!(
        "evaluated {} configurations, {} feasible, Pareto front of {}",
        outcome.evaluations(),
        outcome.feasible().len(),
        outcome.pareto_front().len()
    );

    let gpu = evaluator.baseline_single_cu(CuId(0))?;
    let dla = evaluator.baseline_single_cu(CuId(1))?;

    println!("\nPareto front (average energy vs average latency):");
    for candidate in outcome.pareto_front() {
        println!(
            "  {:>8.2} mJ  {:>7.2} ms  top-1 {:.2}%  reuse {:>5.1}%  stages on {:?}",
            candidate.result.average_energy_mj,
            candidate.result.average_latency_ms,
            candidate.result.accuracy * 100.0,
            candidate.result.fmap_reuse * 100.0,
            candidate.config.mapping.as_slice()
        );
    }

    for (label, pick) in [
        ("Ours-L (latency-oriented)", outcome.latency_oriented(0.01)),
        ("Ours-E (energy-oriented)", outcome.energy_oriented(0.01)),
    ] {
        if let Some(candidate) = pick {
            println!(
                "\n{label}: {:.2} ms, {:.2} mJ, top-1 {:.2}%",
                candidate.result.average_latency_ms,
                candidate.result.average_energy_mj,
                candidate.result.accuracy * 100.0
            );
            println!(
                "  energy gain vs GPU-only: {:.2}x, speedup vs DLA-only: {:.2}x",
                gpu.energy_mj / candidate.result.average_energy_mj,
                dla.latency_ms / candidate.result.average_latency_ms
            );
        }
    }
    Ok(())
}
