//! Demo of the mapping service: submit a batch of requests (with
//! duplicates) for several models and platforms through the coalescing
//! batch scheduler, then repeat one request to show the evaluation cache
//! at work.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use map_and_conquer::runtime::{BatchConfig, MappingRequest, MappingService};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = MappingService::new();
    println!("models:    {}", service.models().names().join(", "));
    println!("platforms: {}\n", service.platforms().names().join(", "));

    // A small sweep: one transformer and one CNN across three boards —
    // plus duplicates, the way several planners asking about the same
    // deployment at once look to the service.
    let mut requests = Vec::new();
    for model in ["visformer_tiny_cifar100", "vgg11_cifar100"] {
        for platform in ["agx_xavier", "orin_agx", "edge_biglittle"] {
            requests.push(
                MappingRequest::new(model, platform)
                    .validation_samples(1000)
                    .generations(8)
                    .population_size(16)
                    .stall_generations(4),
            );
        }
    }
    requests.push(requests[0].clone());
    requests.push(requests[3].clone());

    let report = service.submit_batch_with(&requests, &BatchConfig::default());
    println!(
        "batch: {} requests, {} searches run, {} coalesced onto them \
         (max_concurrent={}, threads/request={}, {:.1} ms)\n",
        report.stats.requests,
        report.stats.unique_requests,
        report.stats.coalesced_requests,
        report.stats.max_concurrent,
        report.stats.threads_per_request,
        report.stats.elapsed_ms,
    );

    println!(
        "{:<26} {:<16} {:>6} {:>7} {:>7} {:>6} {:>9} {:>9} {:>9}",
        "model", "platform", "front", "evals", "fresh", "memo", "hit%", "ms", "best obj"
    );
    for result in &report.responses {
        let response = result.as_ref().map_err(|e| Box::new(e.clone()))?;
        let best = response
            .best_by_objective
            .as_ref()
            .map(|c| format!("{:.3}", c.result.objective))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<26} {:<16} {:>6} {:>7} {:>7} {:>6} {:>8.1}% {:>9.1} {:>9}",
            response.model,
            response.platform,
            response.pareto_front.len(),
            response.stats.evaluations,
            response.stats.evaluations_performed,
            response.stats.memo_hits,
            response.stats.cache_hit_ratio() * 100.0,
            response.stats.elapsed_ms,
            best,
        );
    }

    // Replay the first request: the whole search is answered from cache.
    let replay = service.submit(&requests[0])?;
    println!(
        "\nreplayed {} on {}: {:.1}% cache hits, {} memo hits, {:.1} ms",
        replay.model,
        replay.platform,
        replay.stats.cache_hit_ratio() * 100.0,
        replay.stats.memo_hits,
        replay.stats.elapsed_ms
    );

    // Warm-start the same workload under a different seed: the elite
    // archive seeds the initial population (surrogate-ranked), so a third
    // of the budget reaches a front no worse than the cold search's.
    let warm = service.submit(
        &requests[0]
            .clone()
            .seed(4242)
            .generations(3)
            .warm_start(true),
    )?;
    println!(
        "warm-started {} on {}: {} seeds injected, {} evaluations ({} fresh), best obj {}",
        warm.model,
        warm.platform,
        warm.stats.warm_start_seeds,
        warm.stats.evaluations,
        warm.stats.evaluations_performed,
        warm.best_by_objective
            .as_ref()
            .map(|c| format!("{:.3}", c.result.objective))
            .unwrap_or_else(|| "-".to_string()),
    );

    let totals = service.cache_stats();
    println!(
        "cache after sweep: {} entries, {} hits / {} misses ({:.1}% hit ratio), {} coalesced lookups",
        totals.entries,
        totals.hits,
        totals.misses,
        totals.hit_ratio() * 100.0,
        totals.coalesced,
    );

    // Every request above — batched, replayed, warm-started — went
    // through the same staged pipeline; its per-stage counters tell the
    // service's story in one table.
    let pipeline = service.pipeline_stats();
    println!(
        "\npipeline: {} requests ({} coalesced), {} searches, {} evaluator builds / {} pool hits",
        pipeline.requests,
        pipeline.coalesced_requests,
        pipeline.searches_run,
        pipeline.evaluator_builds,
        pipeline.evaluator_pool_hits,
    );
    for stage in &pipeline.stages {
        println!(
            "  {:<17} {:>4} entered, {:>9.1} ms busy",
            stage.stage,
            stage.entered,
            stage.busy_micros as f64 / 1e3
        );
    }

    // Underneath those lifetime counters sit log-scale latency
    // histograms; the digests answer "how slow is slow" per stage.
    println!(
        "\n{:<17} {:>6} {:>10} {:>10} {:>10}",
        "latency", "count", "p50 us", "p99 us", "max us"
    );
    let request_latency = service.request_latency();
    for summary in service.stage_latency().iter().chain([&request_latency]) {
        println!(
            "{:<17} {:>6} {:>10.1} {:>10.1} {:>10.1}",
            summary.name, summary.count, summary.p50_micros, summary.p99_micros, summary.max_micros
        );
    }

    // The trace ring keeps full span traces for recent and slow
    // requests; replaying the slowest one shows where its time went.
    if let Some(trace) = service.slowest_trace() {
        println!(
            "\nslowest retained trace: #{} {} on {} ({:.1} us total, {} generations recorded)",
            trace.id,
            trace.model,
            trace.platform,
            trace.total_micros(),
            trace.generations.len(),
        );
        for span in &trace.stages {
            println!(
                "  {:>9.1} us  {:<17} {:>9.1} us",
                span.enter_nanos as f64 / 1e3,
                span.stage,
                span.duration_nanos as f64 / 1e3,
            );
        }
        for event in &trace.events {
            println!(
                "  {:>9.1} us  {:<17} {}",
                event.at_nanos as f64 / 1e3,
                event.label,
                event.detail,
            );
        }
    }
    Ok(())
}
