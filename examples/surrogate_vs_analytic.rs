//! Compare configuration evaluation through the analytic hardware model
//! with evaluation through the trained gradient-boosted surrogate (the
//! paper's XGBoost pathway), reporting the surrogate's held-out error and
//! the end-to-end deviation it introduces.
//!
//! ```text
//! cargo run --release --example surrogate_vs_analytic
//! ```

use map_and_conquer::core::{Estimator, EvaluatorBuilder, MappingConfig};
use map_and_conquer::mpsoc::Platform;
use map_and_conquer::nn::models::{visformer, ModelPreset};
use map_and_conquer::predictor::{DatasetConfig, GbtConfig, PerformancePredictor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();

    println!("training the surrogate on a synthetic profiling dataset ...");
    let predictor = PerformancePredictor::train(
        &platform,
        &DatasetConfig {
            samples: 3000,
            seed: 7,
            noise_std: 0.05,
            train_fraction: 0.85,
        },
        &GbtConfig::default(),
    )?;
    let report = predictor.validation_report();
    println!(
        "surrogate accuracy: latency MAPE {:.1}% (R² {:.3}), energy MAPE {:.1}% (R² {:.3})",
        report.latency_mape * 100.0,
        report.latency_r2,
        report.energy_mape * 100.0,
        report.energy_r2
    );

    let analytic = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(2000)
        .build()?;
    let surrogate = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(2000)
        .estimator(Estimator::Surrogate(predictor))
        .build()?;

    println!("\nconfiguration                 | analytic [ms / mJ] | surrogate [ms / mJ]");
    println!("------------------------------+--------------------+--------------------");
    for (label, fractions) in [
        ("even 3-way split", vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
        ("front-loaded 5/8-2/8-1/8", vec![0.625, 0.25, 0.125]),
        ("back-loaded 1/8-2/8-5/8", vec![0.125, 0.25, 0.625]),
    ] {
        let partition =
            map_and_conquer::dynamic::PartitionMatrix::from_stage_fractions(&network, &fractions)?;
        let indicator = map_and_conquer::dynamic::IndicatorMatrix::full(&network, 3);
        let mapping = map_and_conquer::core::Mapping::identity(&platform);
        let dvfs = map_and_conquer::core::DvfsAssignment::max_frequency(&mapping, &platform)?;
        let config = MappingConfig::new(partition, indicator, mapping, dvfs)?;
        let a = analytic.evaluate(&config)?;
        let s = surrogate.evaluate(&config)?;
        println!(
            "{label:<30}| {:>7.2} / {:>8.2} | {:>7.2} / {:>8.2}",
            a.average_latency_ms, a.average_energy_mj, s.average_latency_ms, s.average_energy_mj
        );
    }
    println!(
        "\nthe surrogate tracks the analytic model closely enough to drive the search, mirroring \
         the paper's use of an XGBoost predictor instead of on-device measurements."
    );
    Ok(())
}
