//! Search mappings for VGG-19 under the 50% feature-map-reuse constraint —
//! the paper's "generalisation to other architectures" study (§VI-D) plus
//! its most constrained reuse strategy.
//!
//! ```text
//! cargo run --release --example vgg19_search
//! ```

use map_and_conquer::core::{Constraints, EvaluatorBuilder};
use map_and_conquer::mpsoc::{CuId, Platform};
use map_and_conquer::nn::models::{vgg19, ModelPreset};
use map_and_conquer::optim::{MappingSearch, SearchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = vgg19(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network, platform)
        .validation_samples(4000)
        .constraints(Constraints::with_fmap_reuse_limit(0.5))
        .build()?;

    let outcome = MappingSearch::new(
        &evaluator,
        SearchConfig {
            generations: 20,
            population_size: 24,
            seed: 99,
            parallel: true,
            ..SearchConfig::paper()
        },
    )
    .run()?;

    let gpu = evaluator.baseline_single_cu(CuId(0))?;
    let dla = evaluator.baseline_single_cu(CuId(1))?;
    println!(
        "baselines: GPU {:.1} ms / {:.1} mJ,  DLA {:.1} ms / {:.1} mJ",
        gpu.latency_ms, gpu.energy_mj, dla.latency_ms, dla.energy_mj
    );
    println!(
        "evaluated {} configurations ({} feasible under reuse <= 50%)",
        outcome.evaluations(),
        outcome.feasible().len()
    );

    if let Some(best) = outcome
        .energy_oriented(0.01)
        .or_else(|| outcome.energy_oriented(0.06))
    {
        println!(
            "\nbest energy-oriented configuration: {:.2} ms, {:.2} mJ, top-1 {:.2}%, reuse {:.0}%",
            best.result.average_latency_ms,
            best.result.average_energy_mj,
            best.result.accuracy * 100.0,
            best.result.fmap_reuse * 100.0
        );
        println!(
            "energy gain vs GPU-only: {:.2}x   speedup vs DLA-only: {:.2}x",
            gpu.energy_mj / best.result.average_energy_mj,
            dla.latency_ms / best.result.average_latency_ms
        );
        println!(
            "{:.1}% of samples exit before the last stage ({:.2} stages executed on average)",
            best.result.early_exit_fraction() * 100.0,
            best.result.average_stages_executed
        );
        println!("\nper-stage breakdown:");
        for stage in &best.result.stage_performance {
            println!(
                "  stage {} on {}: T_S = {:>7.2} ms, E_S = {:>7.2} mJ (transfers {:.2} ms)",
                stage.stage, stage.cu, stage.latency_ms, stage.energy_mj, stage.transfer_ms
            );
        }
    } else {
        println!("no feasible configuration found — increase the search budget");
    }
    Ok(())
}
