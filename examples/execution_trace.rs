//! Print a Gantt-style execution trace of a Map-and-Conquer configuration:
//! per-slice start/finish times on every compute unit, the stalls caused by
//! inter-stage feature dependencies (paper Fig. 3) and the agreement
//! between the event simulator and the closed-form latency recursion
//! (eq. 8–9).
//!
//! ```text
//! cargo run --example execution_trace
//! ```

use map_and_conquer::core::perf::evaluate_performance;
use map_and_conquer::core::{Estimator, ExecutionTrace, MappingConfig};
use map_and_conquer::dynamic::DynamicNetwork;
use map_and_conquer::mpsoc::Platform;
use map_and_conquer::nn::models::{visformer_tiny, ModelPreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = visformer_tiny(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let config = MappingConfig::uniform(&network, &platform)?;
    let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)?;

    let estimator = Estimator::Analytic;
    let trace = ExecutionTrace::simulate(&dynamic, &config, &platform, &estimator)?;
    println!("{}", trace.render());
    println!(
        "makespan {:.3} ms, total stall time {:.3} ms",
        trace.makespan_ms(),
        trace.total_stall_ms()
    );

    let perf = evaluate_performance(&dynamic, &config, &platform, &estimator)?;
    println!("\nstage | closed-form T_S [ms] | simulated finish [ms]");
    println!("------+----------------------+----------------------");
    for (stage, finish) in perf.stages.iter().zip(trace.stage_finish_ms()) {
        println!(
            "{:>5} | {:>20.4} | {:>20.4}",
            stage.stage, stage.latency_ms, finish
        );
    }
    println!("\nthe event-driven simulation and the analytic recursion of eq. 8-9 agree exactly.");
    Ok(())
}
