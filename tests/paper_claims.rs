//! Qualitative claims of the paper's evaluation section, checked end to
//! end against the simulated substrate (absolute numbers differ — see
//! `EXPERIMENTS.md` — but the orderings and trends must hold).

use map_and_conquer::core::{EvaluatorBuilder, MappingConfig};
use map_and_conquer::dynamic::{
    AccuracyModel, AccuracyProfile, DynamicNetwork, IndicatorMatrix, PartitionMatrix,
    SyntheticValidationSet,
};
use map_and_conquer::mpsoc::{CuId, Platform};
use map_and_conquer::nn::models::{vgg19, visformer, ModelPreset};
use map_and_conquer::nn::ImportanceModel;

/// §VI-D: VGG-19 benefits more from Map-and-Conquer than Visformer because
/// of its weight redundancy and heavy feature maps (4.6x/4.4x vs 2.1x/1.7x
/// in the paper).
#[test]
fn vgg19_gains_exceed_visformer_gains() {
    let platform = Platform::agx_xavier();
    let mut gains = Vec::new();
    for network in [
        visformer(ModelPreset::cifar100()),
        vgg19(ModelPreset::cifar100()),
    ] {
        let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
            .validation_samples(3000)
            .build()
            .unwrap();
        let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
        let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
        let config = MappingConfig::uniform(&network, &platform).unwrap();
        let dynamic = evaluator.evaluate(&config).unwrap();
        gains.push((
            gpu.energy_mj / dynamic.average_energy_mj,
            dla.latency_ms / dynamic.average_latency_ms,
        ));
    }
    let (visformer_energy_gain, visformer_speedup) = gains[0];
    let (vgg_energy_gain, vgg_speedup) = gains[1];
    assert!(
        visformer_energy_gain > 1.5,
        "visformer energy gain {visformer_energy_gain}"
    );
    assert!(
        visformer_speedup > 1.5,
        "visformer speedup {visformer_speedup}"
    );
    assert!(vgg_energy_gain > visformer_energy_gain);
    assert!(vgg_speedup > visformer_speedup);
}

/// §VI-D: more than 80% of VGG-19 samples are classified at earlier stages.
#[test]
fn most_vgg19_samples_exit_early() {
    let network = vgg19(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(5000)
        .build()
        .unwrap();
    // A paper-style front-loaded split: the first stage keeps half of the
    // (importance-ranked) channels, the DLA stages share the rest.
    let config = MappingConfig::new(
        PartitionMatrix::from_stage_fractions(&network, &[0.5, 0.25, 0.25]).unwrap(),
        IndicatorMatrix::full(&network, 3),
        map_and_conquer::core::Mapping::identity(&platform),
        map_and_conquer::core::DvfsAssignment::max_frequency(
            &map_and_conquer::core::Mapping::identity(&platform),
            &platform,
        )
        .unwrap(),
    )
    .unwrap();
    let result = evaluator.evaluate(&config).unwrap();
    assert!(
        result.early_exit_fraction() > 0.8,
        "early exit fraction {}",
        result.early_exit_fraction()
    );
    // And the dynamic VGG-19 beats its static baseline accuracy (Table II).
    assert!(result.accuracy > 0.8055);
}

/// Fig. 6: restricting feature-map reuse degrades the accuracy attainable
/// by the final stage; the 50% case loses several percent.
#[test]
fn feature_map_reuse_correlates_with_accuracy() {
    let network = visformer(ModelPreset::cifar100());
    let importance = ImportanceModel::synthetic(&network, 3, 1.5);
    let model = AccuracyModel::new(AccuracyProfile::visformer_cifar100(), importance).unwrap();
    let dataset = SyntheticValidationSet::cifar100_like(17);
    let partition = PartitionMatrix::from_stage_fractions(&network, &[0.5, 0.25, 0.25]).unwrap();

    let mut final_accuracies = Vec::new();
    for keep_every in [1usize, 2, 4] {
        // keep_every = 1 forwards everything, larger values thin the reuse.
        let mut indicator = IndicatorMatrix::none(&network, 3);
        for layer in 0..network.num_layers() {
            if layer % keep_every == 0 {
                for stage in 0..2 {
                    indicator
                        .set(map_and_conquer::nn::LayerId(layer), stage, true)
                        .unwrap();
                }
            }
        }
        let dynamic = DynamicNetwork::transform(&network, &partition, &indicator).unwrap();
        let report = model.evaluate(&dynamic, &dataset);
        final_accuracies.push(report.final_stage_accuracy);
    }
    assert!(final_accuracies[0] > final_accuracies[1]);
    assert!(final_accuracies[1] > final_accuracies[2]);
    assert!(
        final_accuracies[0] - final_accuracies[2] > 0.02,
        "accuracy should drop noticeably when reuse is quartered: {final_accuracies:?}"
    );
}

/// Fig. 1 (right): the dynamic deployment moves fewer feature maps between
/// compute units than the static deployment of the same configuration.
#[test]
fn dynamic_deployment_reduces_fmap_traffic() {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(3000)
        .build()
        .unwrap();
    let config = MappingConfig::uniform(&network, &platform).unwrap();
    let dynamic_net =
        DynamicNetwork::transform(&network, &config.partition, &config.indicator).unwrap();
    let result = evaluator.evaluate(&config).unwrap();

    // Static deployment always moves every forwarded feature map.
    let static_bytes = dynamic_net.total_transfer_bytes();
    // Dynamic deployment only needs the stages that are instantiated.
    let total: usize = result.exit_counts.iter().sum();
    let mut dynamic_bytes = 0.0;
    for (stage_index, stage) in dynamic_net.stages().iter().enumerate() {
        let instantiated: usize = result.exit_counts.iter().skip(stage_index).sum();
        dynamic_bytes += stage.total_incoming_bytes() * instantiated as f64 / total as f64;
    }
    assert!(
        dynamic_bytes < static_bytes * 0.8,
        "dynamic {dynamic_bytes} vs static {static_bytes}"
    );
}

/// §V-D: assigning the most important channels to the earliest stage lets
/// far more samples terminate prematurely than the reverse assignment, the
/// mechanism behind the paper's latency/energy gains.
#[test]
fn front_loaded_partitions_exit_earlier() {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(3000)
        .build()
        .unwrap();
    let indicator = IndicatorMatrix::full(&network, 3);
    let mapping = map_and_conquer::core::Mapping::identity(&platform);
    let dvfs = map_and_conquer::core::DvfsAssignment::max_frequency(&mapping, &platform).unwrap();

    let front = MappingConfig::new(
        PartitionMatrix::from_stage_fractions(&network, &[0.625, 0.25, 0.125]).unwrap(),
        indicator.clone(),
        mapping.clone(),
        dvfs.clone(),
    )
    .unwrap();
    let back = MappingConfig::new(
        PartitionMatrix::from_stage_fractions(&network, &[0.125, 0.25, 0.625]).unwrap(),
        indicator,
        mapping,
        dvfs,
    )
    .unwrap();
    let front_result = evaluator.evaluate(&front).unwrap();
    let back_result = evaluator.evaluate(&back).unwrap();
    assert!(
        front_result.exit_counts[0] > back_result.exit_counts[0],
        "front {:?} vs back {:?}",
        front_result.exit_counts,
        back_result.exit_counts
    );
    assert!(front_result.average_stages_executed < back_result.average_stages_executed);
}
