//! Consistency between the closed-form concurrent performance model
//! (eq. 8–14) and the event-driven execution simulator, across randomly
//! generated configurations.

use map_and_conquer::core::perf::evaluate_performance;
use map_and_conquer::core::{Estimator, ExecutionTrace};
use map_and_conquer::dynamic::DynamicNetwork;
use map_and_conquer::mpsoc::Platform;
use map_and_conquer::nn::models::{vgg11, visformer_tiny, ModelPreset};
use map_and_conquer::optim::Genome;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn simulator_matches_recursion_for_random_configurations() {
    let platform = Platform::agx_xavier();
    let networks = [
        visformer_tiny(ModelPreset::cifar100()),
        vgg11(ModelPreset::cifar100()),
    ];
    let mut rng = StdRng::seed_from_u64(2024);
    let estimator = Estimator::Analytic;
    for network in &networks {
        for _ in 0..25 {
            let genome = Genome::random(network, &platform, &mut rng);
            let config = genome.decode(network, &platform).unwrap();
            let dynamic =
                DynamicNetwork::transform(network, &config.partition, &config.indicator).unwrap();
            let perf = evaluate_performance(&dynamic, &config, &platform, &estimator).unwrap();
            let trace = ExecutionTrace::simulate(&dynamic, &config, &platform, &estimator).unwrap();
            for (analytic, simulated) in perf.stages.iter().zip(trace.stage_finish_ms()) {
                assert!(
                    (analytic.latency_ms - simulated).abs() < 1e-6,
                    "{}: analytic {} vs simulated {}",
                    network.name(),
                    analytic.latency_ms,
                    simulated
                );
            }
            assert!((perf.makespan_ms() - trace.makespan_ms()).abs() < 1e-6);
        }
    }
}

#[test]
fn performance_invariants_hold_for_random_configurations() {
    let platform = Platform::agx_xavier();
    let network = visformer_tiny(ModelPreset::cifar100());
    let mut rng = StdRng::seed_from_u64(7);
    let estimator = Estimator::Analytic;
    for _ in 0..40 {
        let genome = Genome::random(&network, &platform, &mut rng);
        let config = genome.decode(&network, &platform).unwrap();
        let dynamic =
            DynamicNetwork::transform(&network, &config.partition, &config.indicator).unwrap();
        let perf = evaluate_performance(&dynamic, &config, &platform, &estimator).unwrap();
        // Latency with more instantiated stages can only grow; energy is
        // strictly additive.
        let mut previous_latency = 0.0;
        let mut previous_energy = 0.0;
        for stage_count in 1..=perf.num_stages() {
            let latency = perf.latency_with_stages(stage_count);
            let energy = perf.energy_with_stages(stage_count);
            assert!(latency + 1e-12 >= previous_latency);
            assert!(energy + 1e-12 >= previous_energy);
            previous_latency = latency;
            previous_energy = energy;
        }
        // Every stage's completion time includes at least its busy time.
        for stage in &perf.stages {
            assert!(stage.latency_ms + 1e-12 >= stage.busy_ms);
            assert!(stage.energy_mj > 0.0);
        }
    }
}
