//! Cross-crate integration tests: the full pipeline from model + platform
//! to evaluated mapping configurations and searched Pareto fronts.

use map_and_conquer::core::{Constraints, EvaluatorBuilder, MappingConfig};
use map_and_conquer::mpsoc::{CuId, Platform};
use map_and_conquer::nn::models::{vgg19, visformer, visformer_tiny, ModelPreset};
use map_and_conquer::optim::{MappingSearch, SearchConfig};

/// The calibrated AGX Xavier model must reproduce the single-CU baseline
/// rows of Table II for both architectures within a 30% band.
#[test]
fn table2_baseline_rows_are_reproduced() {
    let platform = Platform::agx_xavier();
    let cases = [
        (
            "visformer",
            visformer(ModelPreset::cifar100()),
            15.01,
            197.35,
            53.71,
            69.22,
        ),
        (
            "vgg19",
            vgg19(ModelPreset::cifar100()),
            25.23,
            630.11,
            114.41,
            164.89,
        ),
    ];
    for (name, network, gpu_lat, gpu_energy, dla_lat, dla_energy) in cases {
        let (measured_gpu_lat, measured_gpu_energy) =
            platform.single_cu_baseline(&network, CuId(0)).unwrap();
        let (measured_dla_lat, measured_dla_energy) =
            platform.single_cu_baseline(&network, CuId(1)).unwrap();
        let close = |measured: f64, paper: f64| (measured - paper).abs() / paper < 0.3;
        assert!(
            close(measured_gpu_lat, gpu_lat),
            "{name} gpu latency {measured_gpu_lat}"
        );
        assert!(
            close(measured_gpu_energy, gpu_energy),
            "{name} gpu energy {measured_gpu_energy}"
        );
        assert!(
            close(measured_dla_lat, dla_lat),
            "{name} dla latency {measured_dla_lat}"
        );
        assert!(
            close(measured_dla_energy, dla_energy),
            "{name} dla energy {measured_dla_energy}"
        );
    }
}

/// The headline claim of the paper in miniature: the framework finds
/// configurations that are simultaneously more energy-efficient than the
/// GPU-only mapping and faster than the DLA-only mapping, while staying
/// within a small accuracy budget.
#[test]
fn search_beats_both_single_cu_baselines_on_xavier() {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network, platform)
        .validation_samples(2000)
        .build()
        .unwrap();
    let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
    let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();

    let outcome = MappingSearch::new(
        &evaluator,
        SearchConfig {
            generations: 8,
            population_size: 16,
            seed: 5,
            parallel: true,
            ..SearchConfig::fast()
        },
    )
    .run()
    .unwrap();

    let winner = outcome
        .feasible()
        .into_iter()
        .filter(|c| c.result.accuracy_drop <= 0.01)
        .find(|c| {
            c.result.average_energy_mj < gpu.energy_mj
                && c.result.average_latency_ms < dla.latency_ms
        });
    assert!(
        winner.is_some(),
        "no configuration dominates the single-CU baselines"
    );
}

/// Tightening the feature-map-reuse constraint must not improve the best
/// reachable accuracy (the correlation of Fig. 6 / Fig. 7).
#[test]
fn reuse_constraints_trade_accuracy() {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let mut best_accuracy = Vec::new();
    for limit in [None, Some(0.75), Some(0.5)] {
        let constraints = match limit {
            Some(l) => Constraints::with_fmap_reuse_limit(l),
            None => Constraints::default(),
        };
        let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
            .validation_samples(2000)
            .constraints(constraints)
            .build()
            .unwrap();
        let outcome = MappingSearch::new(
            &evaluator,
            SearchConfig {
                generations: 6,
                population_size: 16,
                seed: 11,
                parallel: true,
                ..SearchConfig::fast()
            },
        )
        .run()
        .unwrap();
        let best = outcome
            .feasible()
            .into_iter()
            .map(|c| c.result.accuracy)
            .fold(0.0f64, f64::max);
        best_accuracy.push(best);
    }
    assert!(best_accuracy[0] >= best_accuracy[1] - 1e-9);
    assert!(best_accuracy[1] >= best_accuracy[2] - 1e-9);
    // The 50%-reuse strategy must cost noticeable accuracy compared to the
    // unconstrained one (the paper reports ~6%).
    assert!(best_accuracy[0] - best_accuracy[2] > 0.005);
}

/// The evaluator, baselines and search all agree on the same platform and
/// network objects (no hidden global state), and evaluation is
/// deterministic.
#[test]
fn evaluation_is_deterministic() {
    let network = visformer_tiny(ModelPreset::cifar100());
    let platform = Platform::dual_test();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(1500)
        .build()
        .unwrap();
    let config = MappingConfig::uniform(&network, &platform).unwrap();
    let a = evaluator.evaluate(&config).unwrap();
    let b = evaluator.evaluate(&config).unwrap();
    assert_eq!(a, b);
}

/// Dynamic deployment can only improve expected energy over the static
/// distributed deployment of the same configuration, and the static
/// deployment must improve on the weak metric of each single-CU baseline
/// (the message of Fig. 1).
#[test]
fn fig1_orderings_hold() {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(2000)
        .build()
        .unwrap();
    let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
    let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
    let config = MappingConfig::uniform(&network, &platform).unwrap();
    let static_dist = evaluator.baseline_static_distributed(&config).unwrap();
    let dynamic = evaluator.evaluate(&config).unwrap();

    assert!(static_dist.latency_ms < dla.latency_ms);
    assert!(static_dist.energy_mj < gpu.energy_mj);
    assert!(dynamic.average_energy_mj < static_dist.energy_mj);
    assert!(dynamic.average_latency_ms <= static_dist.latency_ms + 1e-9);
    assert!(dynamic.accuracy > 0.85);
}
